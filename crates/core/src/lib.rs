//! The **local-polynomial hierarchy** `{Σℓ^LP, Πℓ^LP}` of *A LOCAL View of
//! the Polynomial Hierarchy* (Reiter, PODC 2024), made executable:
//!
//! * [`GameSpec`] / [`decide_game`] — the certificate game between Eve and
//!   Adam (Section 4): players alternately choose `(r, p)`-bounded
//!   certificate assignments, and a local-polynomial machine arbitrates.
//!   The solver searches the game tree exhaustively within explicit
//!   budgets, and can extract Eve's winning first move.
//! * [`Arbiter`] — a named local-polynomial machine (an honest
//!   [`lph_machine::DistributedTm`] or a metered
//!   [`lph_machine::LocalAlgorithm`]) together with its game parameters.
//! * [`arbiters`] — concrete arbiters for the paper's properties:
//!   `ALL-SELECTED` and `EULERIAN` deciders (`Σ₀`), verifiers for
//!   `3-COLORABLE` and `SAT-GRAPH` (`Σ₁`), the spanning-forest game arbiter
//!   for `NOT-ALL-SELECTED` (`Σ₃`, Example 4), and the *fooled* pointer
//!   verifier used to exhibit `NOT-ALL-SELECTED ∉ NLP`.
//! * [`restrictor`] — certificate restrictors, local repairability, and the
//!   restrictive → permissive arbiter conversion of Lemma 8.
//! * [`lattice`] — the class lattice of Figures 1 and 11 as queryable data.
//! * [`separations`] — the executable separation constructions: the
//!   indistinguishable odd/glued-cycle pair of Proposition 21 and the
//!   cut-and-splice certificate pumping of Proposition 23.
//!
//! # Example
//!
//! ```
//! use lph_graphs::{generators, IdAssignment};
//! use lph_core::{arbiters, decide_game, GameLimits};
//!
//! let g = generators::cycle(4);
//! let id = IdAssignment::small(&g, 1);
//! let arb = arbiters::three_colorable_verifier();
//! let res = decide_game(&arb, &g, &id, &GameLimits::default()).unwrap();
//! assert!(res.eve_wins); // C4 is 3-colorable (even 2-colorable)
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arbiter;
pub mod arbiters;
pub mod backend;
mod class;
mod game;
pub mod lattice;
pub mod restrictor;
pub mod separations;

pub use arbiter::{Arbiter, ArbiterKind, Arbitrating};
pub use backend::{decide_game_backend, GameBackend, RefutationEvidence};
pub use class::{ClassId, Hierarchy, Player};
pub use game::{
    decide_game, decide_game_with, enumerate_certificates, GameError, GameLimits, GameResult,
    GameSpec,
};
