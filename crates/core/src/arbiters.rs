//! Concrete arbiters for the paper's properties, spanning levels `Σ₀`–`Σ₃`
//! of the local-polynomial hierarchy.
//!
//! Besides the honest machines (`ALL-SELECTED`, `EULERIAN`), this module
//! contains the two *instructive failures* used by the separation
//! experiments of Proposition 23:
//!
//! * [`distance_to_unselected_verifier`] — a sound `NOT-ALL-SELECTED`
//!   verifier whose certificates are exact distances; with certificate
//!   length capped at `bits` (as the `(r, p)` bound demands on cycles), it
//!   *fails yes-instances* longer than `2^bits`.
//! * [`pointer_to_unselected_verifier`] — a pointer-chasing verifier that
//!   accepts all genuine yes-instances but is *fooled into accepting*
//!   all-selected cycles (every node points clockwise) — the cut-and-splice
//!   counterexample made concrete.
//!
//! Their twin failure modes are exactly why `NOT-ALL-SELECTED ∉ NLP`.

use lph_graphs::{BitString, PolyBound};
use lph_machine::{machines, LocalAlgorithm, NodeCtx, NodeInput, NodeProgram, RoundAction};
use lph_props::BoolExpr;

use crate::arbiter::Arbiter;
use crate::game::GameSpec;

fn text_msg(s: &str) -> BitString {
    BitString::from_bytes(s.as_bytes())
}

fn msg_text(m: &BitString) -> Option<String> {
    String::from_utf8(m.to_bytes()?).ok()
}

fn bit_of(cert: &BitString) -> bool {
    *cert == BitString::from_bits01("1")
}

/// The `Σ₀` arbiter (i.e. **LP**-decider) for `ALL-SELECTED`, backed by the
/// honest Turing machine of `lph-machine`.
pub fn all_selected_decider() -> Arbiter {
    Arbiter::from_tm(
        "ALL-SELECTED decider",
        GameSpec::sigma(0, 1, 1, PolyBound::constant(0)),
        machines::all_selected_decider(),
    )
}

/// The `Σ₀` arbiter (i.e. **LP**-decider) for `EULERIAN` (Proposition 15),
/// backed by the even-degree Turing machine.
pub fn eulerian_decider() -> Arbiter {
    Arbiter::from_tm(
        "EULERIAN decider",
        GameSpec::sigma(0, 1, 1, PolyBound::constant(0)),
        machines::even_degree_decider(),
    )
}

/// The `Σ₁` arbiter (i.e. **NLP**-verifier) for `3-COLORABLE` (Example 3):
/// Eve's certificate is a 2-bit color (`00`, `01`, `10`); nodes exchange
/// colors and accept iff their own color is valid and differs from every
/// neighbor's.
pub fn three_colorable_verifier() -> Arbiter {
    struct V;
    impl LocalAlgorithm for V {
        fn spawn(&self, input: NodeInput) -> Box<dyn NodeProgram> {
            let color = input.certificates.first().cloned().unwrap_or_default();
            let valid = color.len() == 2 && color != BitString::from_bits01("11");
            Box::new(
                move |ctx: &mut NodeCtx, round: usize, inbox: &[BitString]| {
                    ctx.charge(1 + inbox.iter().map(BitString::len).sum::<usize>());
                    match round {
                        1 => RoundAction::Send(vec![color.clone(); inbox.len()]),
                        _ => RoundAction::verdict(valid && inbox.iter().all(|m| *m != color)),
                    }
                },
            )
        }
    }
    Arbiter::from_local(
        "3-COLORABLE verifier",
        GameSpec::sigma(1, 1, 1, PolyBound::constant(2)),
        V,
    )
}

/// The `Σ₁` arbiter (i.e. **NLP**-verifier) for `2-COLORABLE`
/// (Proposition 21's property): Eve's certificate is a single color bit;
/// nodes exchange bits and accept iff their own is well-formed and differs
/// from every neighbor's. The existential certificate is exactly the
/// symmetry-breaking power that no deterministic machine has.
pub fn two_colorable_verifier() -> Arbiter {
    struct V;
    impl LocalAlgorithm for V {
        fn spawn(&self, input: NodeInput) -> Box<dyn NodeProgram> {
            let color = input.certificates.first().cloned().unwrap_or_default();
            let valid = color.len() == 1;
            Box::new(
                move |ctx: &mut NodeCtx, round: usize, inbox: &[BitString]| {
                    ctx.charge(1 + inbox.len());
                    match round {
                        1 => RoundAction::Send(vec![color.clone(); inbox.len()]),
                        _ => RoundAction::verdict(valid && inbox.iter().all(|m| *m != color)),
                    }
                },
            )
        }
    }
    Arbiter::from_local(
        "2-COLORABLE verifier",
        GameSpec::sigma(1, 1, 1, PolyBound::constant(1)),
        V,
    )
}

/// The `Σ₁` arbiter (i.e. **NLP**-verifier) for `SAT-GRAPH` (Theorem 19):
/// Eve's certificate at `u` is a valuation of the variables of `u`'s
/// formula (one bit per variable, in sorted name order). Nodes broadcast
/// `name=bit` lists and accept iff their formula is satisfied and all
/// shared variables agree with every neighbor.
pub fn sat_graph_verifier() -> Arbiter {
    struct V;
    impl LocalAlgorithm for V {
        fn spawn(&self, input: NodeInput) -> Box<dyn NodeProgram> {
            // Decode the formula and pair variables with certificate bits.
            let decoded: Option<(BoolExpr, Vec<(String, bool)>)> = (|| {
                let text = msg_text(&input.label)?;
                let formula = BoolExpr::parse(&text).ok()?;
                let vars: Vec<String> = formula.variables().into_iter().collect();
                let cert = input.certificates.first()?;
                if cert.len() != vars.len() {
                    return None;
                }
                let valuation: Vec<(String, bool)> = vars.into_iter().zip(cert.iter()).collect();
                Some((formula, valuation))
            })();
            Box::new(
                move |ctx: &mut NodeCtx, round: usize, inbox: &[BitString]| {
                    ctx.charge(1 + inbox.iter().map(BitString::len).sum::<usize>());
                    let Some((formula, valuation)) = &decoded else {
                        return RoundAction::reject();
                    };
                    ctx.charge(valuation.len());
                    match round {
                        1 => {
                            let payload: String = valuation
                                .iter()
                                .map(|(n, b)| format!("{n}={};", u8::from(*b)))
                                .collect();
                            RoundAction::Send(vec![text_msg(&payload); inbox.len()])
                        }
                        _ => {
                            let satisfied = formula.eval(&|name: &str| {
                                valuation
                                    .iter()
                                    .find(|(n, _)| n == name)
                                    .map(|&(_, b)| b)
                                    .unwrap_or(false)
                            });
                            let consistent = inbox.iter().all(|m| {
                                let Some(text) = msg_text(m) else {
                                    return false;
                                };
                                text.split(';').filter(|p| !p.is_empty()).all(|pair| {
                                    let Some((name, bit)) = pair.split_once('=') else {
                                        return false;
                                    };
                                    match valuation.iter().find(|(n, _)| n == name) {
                                        // Shared variable: must agree.
                                        Some(&(_, mine)) => bit == if mine { "1" } else { "0" },
                                        // Not my variable: no constraint.
                                        None => true,
                                    }
                                })
                            });
                            RoundAction::verdict(satisfied && consistent)
                        }
                    }
                },
            )
        }
    }
    Arbiter::from_local(
        "SAT-GRAPH verifier",
        GameSpec::sigma(1, 1, 1, PolyBound::linear(0, 1)),
        V,
    )
}

/// The `Σ₃` arbiter for `NOT-ALL-SELECTED`, operationalizing the
/// spanning-forest game of Example 4:
///
/// * move 1 (Eve): `κ₁(u)` is a parent pointer — empty for "I am a root",
///   otherwise the identifier of a neighbor;
/// * move 2 (Adam): `κ₂(u)` is the challenge bit `X(u)`;
/// * move 3 (Eve): `κ₃(u)` is the charge bit `Y(u)`.
///
/// The arbiter checks locally: roots must be unselected and positively
/// charged; children must satisfy `Y(u) = Y(parent) ⊕ X(u)`.
pub fn not_all_selected_sigma3() -> Arbiter {
    struct V;
    impl LocalAlgorithm for V {
        fn spawn(&self, input: NodeInput) -> Box<dyn NodeProgram> {
            let selected = input.label == BitString::from_bits01("1");
            let parent = input.certificates.first().cloned().unwrap_or_default();
            let x_bit = input.certificates.get(1).map(bit_of).unwrap_or(false);
            let y_bit = input.certificates.get(2).map(bit_of).unwrap_or(false);
            let my_id = input.id.clone();
            Box::new(
                move |ctx: &mut NodeCtx, round: usize, inbox: &[BitString]| {
                    ctx.charge(1 + inbox.iter().map(BitString::len).sum::<usize>());
                    match round {
                        1 => {
                            // Broadcast (id, Y) so neighbors can locate their
                            // parent and read its charge.
                            let payload =
                                format!("i{};y{};", my_id, u8::from(y_bit)).replace('ε', "");
                            RoundAction::Send(vec![text_msg(&payload); inbox.len()])
                        }
                        _ => {
                            if parent.is_empty() {
                                // Root case: unselected and positively charged.
                                return RoundAction::verdict(!selected && y_bit);
                            }
                            // Child case: find the parent among the neighbors.
                            let parent_y = inbox.iter().find_map(|m| {
                                let text = msg_text(m)?;
                                let id_part = text.strip_prefix('i')?.split(';').next()?;
                                let y_part = text.split(";y").nth(1)?.chars().next()?;
                                if id_part == parent.to_string().replace('ε', "") {
                                    Some(y_part == '1')
                                } else {
                                    None
                                }
                            });
                            match parent_y {
                                Some(py) => RoundAction::verdict(y_bit == (py ^ x_bit)),
                                None => RoundAction::reject(), // dangling pointer
                            }
                        }
                    }
                },
            )
        }
    }
    Arbiter::from_local(
        "NOT-ALL-SELECTED Σ3 arbiter (Example 4)",
        GameSpec::sigma(3, 1, 1, PolyBound::linear(1, 1)),
        V,
    )
}

/// A `Π₁` arbiter for `ALL-SELECTED`, witnessing the inclusion
/// `Σ₀ ⊆ Π₁` (Figure 1's upward edges): nodes accept iff their own label
/// is `1`, ignoring Adam's certificate entirely — so the arbiter accepts
/// under *every* universal move exactly when the graph is all-selected.
///
/// Deliberately trivial: it exercises the Π-side game plumbing (and the
/// CDCL backend's rejection-selector encoding) without entangling the
/// verdict with certificate content.
pub fn all_selected_pi1() -> Arbiter {
    struct V;
    impl LocalAlgorithm for V {
        fn spawn(&self, input: NodeInput) -> Box<dyn NodeProgram> {
            let selected = input.label == BitString::from_bits01("1");
            Box::new(
                move |ctx: &mut NodeCtx, _round: usize, inbox: &[BitString]| {
                    ctx.charge(1 + inbox.len());
                    RoundAction::verdict(selected)
                },
            )
        }
    }
    Arbiter::from_local(
        "ALL-SELECTED Π1 arbiter (Σ0 ⊆ Π1)",
        GameSpec::pi(1, 1, 1, PolyBound::constant(1)),
        V,
    )
}

/// A *sound but budget-limited* `Σ₁` candidate for `NOT-ALL-SELECTED`:
/// Eve's certificate is the exact distance to an unselected node, encoded
/// in at most `bits` bits. Nodes check `d = 0 ⟺ unselected` and
/// `d > 0 ⟹ some neighbor has d − 1`.
///
/// Correct whenever distances fit, but on yes-instance cycles longer than
/// `2^bits` Eve has no accepting certificate — the experimental face of
/// `NOT-ALL-SELECTED ∉ Σ₁^LP` (Proposition 23): constant-size certificates
/// cannot carry the global information.
pub fn distance_to_unselected_verifier(bits: usize) -> Arbiter {
    struct V {
        bits: usize,
    }
    impl LocalAlgorithm for V {
        fn spawn(&self, input: NodeInput) -> Box<dyn NodeProgram> {
            let selected = input.label == BitString::from_bits01("1");
            let cert = input.certificates.first().cloned().unwrap_or_default();
            let well_formed = cert.len() <= self.bits;
            let d = cert.to_usize();
            Box::new(
                move |ctx: &mut NodeCtx, round: usize, inbox: &[BitString]| {
                    ctx.charge(1 + inbox.iter().map(BitString::len).sum::<usize>());
                    match round {
                        1 => RoundAction::Send(vec![cert.clone(); inbox.len()]),
                        _ => {
                            if !well_formed {
                                return RoundAction::reject();
                            }
                            let ok = if !selected {
                                d == 0
                            } else {
                                d > 0 && inbox.iter().any(|m| m.to_usize() == d - 1)
                            };
                            RoundAction::verdict(ok)
                        }
                    }
                },
            )
        }
    }
    Arbiter::from_local(
        format!("NOT-ALL-SELECTED distance verifier ({bits} bits)"),
        GameSpec::sigma(1, 1, 1, PolyBound::constant(bits as u64)),
        V { bits },
    )
}

/// An *unsound* `Σ₁` candidate for `NOT-ALL-SELECTED`: Eve's certificate is
/// a pointer (a neighbor's identifier) "toward" an unselected node; a
/// selected node accepts if the pointed neighbor is unselected **or**
/// points somewhere other than back to it.
///
/// On genuine yes-instances Eve points along shortest paths and wins; but
/// on an all-selected cycle she also wins by pointing everyone clockwise —
/// the false accept exhibited by the cut-and-splice argument of
/// Proposition 23.
pub fn pointer_to_unselected_verifier() -> Arbiter {
    struct V;
    impl LocalAlgorithm for V {
        fn spawn(&self, input: NodeInput) -> Box<dyn NodeProgram> {
            let selected = input.label == BitString::from_bits01("1");
            let pointer = input.certificates.first().cloned().unwrap_or_default();
            let my_id = input.id.clone();
            Box::new(
                move |ctx: &mut NodeCtx, round: usize, inbox: &[BitString]| {
                    ctx.charge(1 + inbox.iter().map(BitString::len).sum::<usize>());
                    match round {
                        1 => {
                            // Broadcast (id, selected?, pointer).
                            let payload =
                                format!("i{};s{};p{};", my_id, u8::from(selected), pointer)
                                    .replace('ε', "");
                            RoundAction::Send(vec![text_msg(&payload); inbox.len()])
                        }
                        _ => {
                            if !selected {
                                return RoundAction::accept();
                            }
                            let me = my_id.to_string().replace('ε', "");
                            let target = pointer.to_string().replace('ε', "");
                            let ok = inbox.iter().any(|m| {
                                let Some(text) = msg_text(m) else {
                                    return false;
                                };
                                let mut id_part = "";
                                let mut s_part = "";
                                let mut p_part = "";
                                for field in text.split(';') {
                                    if let Some(rest) = field.strip_prefix('i') {
                                        id_part = rest;
                                    } else if let Some(rest) = field.strip_prefix('s') {
                                        s_part = rest;
                                    } else if let Some(rest) = field.strip_prefix('p') {
                                        p_part = rest;
                                    }
                                }
                                id_part == target && (s_part == "0" || p_part != me)
                            });
                            RoundAction::verdict(ok)
                        }
                    }
                },
            )
        }
    }
    Arbiter::from_local(
        "NOT-ALL-SELECTED pointer verifier (unsound)",
        GameSpec::sigma(1, 1, 1, PolyBound::linear(1, 1)),
        V,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::game::{decide_game, GameLimits};
    use lph_graphs::{enumerate, generators, IdAssignment, LabeledGraph};
    use lph_props::{AllSelected, BooleanGraph, Eulerian, GraphProperty, KColorable, SatGraph};

    fn limits(cap: usize) -> GameLimits {
        GameLimits {
            cert_len_cap: Some(cap),
            ..GameLimits::default()
        }
    }

    fn play(arb: &Arbiter, g: &LabeledGraph, lim: &GameLimits) -> bool {
        let id = IdAssignment::global(g);
        decide_game(arb, g, &id, lim)
            .expect("game within budget")
            .eve_wins
    }

    #[test]
    fn deciders_match_ground_truth() {
        let all_sel = all_selected_decider();
        let euler = eulerian_decider();
        let zero = lph_graphs::BitString::from_bits01("0");
        let one = lph_graphs::BitString::from_bits01("1");
        for base in enumerate::connected_graphs_up_to(4) {
            assert_eq!(play(&euler, &base, &limits(0)), Eulerian.holds(&base));
            for g in enumerate::binary_labelings(&base, &zero, &one) {
                assert_eq!(play(&all_sel, &g, &limits(0)), AllSelected.holds(&g));
            }
        }
    }

    #[test]
    fn three_colorable_game_matches_ground_truth() {
        let arb = three_colorable_verifier();
        let lim = limits(2);
        for g in [
            generators::cycle(3),
            generators::cycle(5),
            generators::path(4),
            generators::complete(4),
            generators::star(5),
        ] {
            assert_eq!(
                play(&arb, &g, &lim),
                KColorable::new(3).holds(&g),
                "graph: {g}"
            );
        }
    }

    #[test]
    fn two_colorable_game_matches_ground_truth() {
        let arb = two_colorable_verifier();
        let lim = limits(1);
        for n in [4usize, 5, 6, 7] {
            let g = generators::cycle(n);
            assert_eq!(play(&arb, &g, &lim), n % 2 == 0, "cycle {n}");
        }
        assert!(play(&arb, &generators::path(4), &lim));
        assert!(!play(&arb, &generators::complete(3), &lim));
    }

    #[test]
    fn three_colorable_witness_is_a_proper_coloring() {
        let arb = three_colorable_verifier();
        let g = generators::cycle(5);
        let id = IdAssignment::global(&g);
        let res = decide_game(&arb, &g, &id, &limits(2)).unwrap();
        assert!(res.eve_wins);
        let w = res.winning_first_move.unwrap();
        for (u, v) in g.edges() {
            assert_ne!(w.cert(u), w.cert(v), "adjacent nodes share a color");
        }
    }

    #[test]
    fn sat_graph_game_matches_ground_truth() {
        let arb = sat_graph_verifier();
        let cases: Vec<(Vec<&str>, bool)> = vec![
            (vec!["vp", "!vp"], false),
            (vec!["vp", "!vq"], true),
            (vec!["&(vp,vq)", "vq"], true),
            (vec!["&(vp,!vp)", "T"], false),
        ];
        for (formulas, expected) in cases {
            let bg = BooleanGraph::new(
                generators::path(formulas.len()),
                formulas
                    .iter()
                    .map(|s| BoolExpr::parse(s).unwrap())
                    .collect(),
            )
            .unwrap();
            assert_eq!(SatGraph.holds(bg.graph()), expected, "ground truth sanity");
            // Certificates: one bit per variable (≤ 2 here).
            assert_eq!(play(&arb, bg.graph(), &limits(2)), expected, "{formulas:?}");
        }
    }

    #[test]
    fn pi1_arbiter_decides_all_selected() {
        let arb = all_selected_pi1();
        let lim = limits(1);
        let zero = lph_graphs::BitString::from_bits01("0");
        let one = lph_graphs::BitString::from_bits01("1");
        for base in enumerate::connected_graphs_up_to(3) {
            for g in enumerate::binary_labelings(&base, &zero, &one) {
                assert_eq!(play(&arb, &g, &lim), AllSelected.holds(&g), "graph: {g}");
            }
        }
    }

    #[test]
    fn sigma3_arbiter_decides_not_all_selected() {
        let arb = not_all_selected_sigma3();
        // Per-move caps: pointer ≤ id length (2 bits for n ≤ 4), X/Y ≤ 1 bit.
        let lim = GameLimits {
            cert_len_cap: Some(2),
            per_move_caps: Some(vec![2, 1, 1]),
            max_runs: 50_000_000,
            ..GameLimits::default()
        };
        for labels in [["1", "1"], ["1", "0"], ["0", "0"]] {
            let g = generators::labeled_path(&labels);
            let expected = labels.iter().any(|l| *l != "1");
            assert_eq!(play(&arb, &g, &lim), expected, "labels {labels:?}");
        }
    }

    #[test]
    fn sigma3_arbiter_on_triangle() {
        let arb = not_all_selected_sigma3();
        let lim = GameLimits {
            cert_len_cap: Some(2),
            per_move_caps: Some(vec![2, 1, 1]),
            max_runs: 50_000_000,
            ..GameLimits::default()
        };
        let yes = generators::labeled_cycle(&["1", "0", "1"]);
        assert!(play(&arb, &yes, &lim));
        let no = generators::labeled_cycle(&["1", "1", "1"]);
        assert!(!play(&arb, &no, &lim));
    }

    #[test]
    fn distance_verifier_is_sound_within_budget() {
        let arb = distance_to_unselected_verifier(3);
        let lim = limits(3);
        let yes = generators::labeled_path(&["1", "0", "1", "1"]);
        assert!(play(&arb, &yes, &lim));
        let no = generators::labeled_path(&["1", "1", "1"]);
        assert!(
            !play(&arb, &no, &lim),
            "no certificate fools it on all-selected"
        );
    }

    #[test]
    fn distance_verifier_fails_long_yes_instances() {
        // One unselected node on a cycle of length 6: the farthest node is
        // at distance 3, which does not fit in 1 bit — Eve loses although
        // the graph IS a yes-instance. (Proposition 23's budget horn.)
        let labels = ["0", "1", "1", "1", "1", "1"];
        let g = generators::labeled_cycle(&labels);
        let arb = distance_to_unselected_verifier(1);
        assert!(!play(&arb, &g, &limits(1)));
        // With 2 bits the distances fit again and Eve wins.
        let arb = distance_to_unselected_verifier(2);
        assert!(play(&arb, &g, &limits(2)));
    }

    #[test]
    fn pointer_verifier_accepts_yes_instances() {
        let arb = pointer_to_unselected_verifier();
        let yes = generators::labeled_path(&["1", "0", "1"]);
        assert!(play(&arb, &yes, &limits(2)));
    }

    #[test]
    fn pointer_verifier_is_fooled_on_all_selected_cycles() {
        // Eve points everyone clockwise: all nodes accept although the
        // graph is a no-instance — the false accept of Proposition 23.
        let arb = pointer_to_unselected_verifier();
        let no = generators::cycle(4);
        assert!(
            play(&arb, &no, &limits(2)),
            "the pointer verifier must be fooled — that is the point"
        );
    }
}
