//! The class lattice of Figures 1 and 11 as queryable data: inclusion
//! edges between the local-polynomial hierarchy and its complement
//! hierarchy, strictness annotations with the result that proves them, and
//! the strict linear chain on graphs of bounded structural degree.

use crate::class::ClassId;

/// How an inclusion edge of Figure 11 is annotated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeKind {
    /// Solid line: the inclusion is proved strict (even on bounded
    /// structural degree).
    ProvedStrict,
    /// Dashed line: an equality on bounded structural degree; strictness on
    /// all graphs holds iff `P ≠ coNP` (Remark 37).
    EqualityOnBoundedDegree,
}

/// One inclusion edge `lower ⊆ upper` of Figure 11.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InclusionEdge {
    /// The smaller class.
    pub lower: ClassId,
    /// The larger class.
    pub upper: ClassId,
    /// Solid or dashed.
    pub kind: EdgeKind,
    /// The paper result justifying the inclusion (and its strictness for
    /// solid edges).
    pub justification: &'static str,
}

/// The inclusion edges of Figure 11, up to level `max_ell` (exclusive
/// upper bound on the lower class's level).
///
/// Within each hierarchy, every class at level `ℓ` is included in both
/// classes at level `ℓ + 1` (a player may skip a move). Across the two
/// hierarchies, Proposition 39 and duality give
/// `coΣℓ ⊆ Πℓ₊₁`, `coΠℓ ⊆ Σℓ₊₁`, `Σℓ ⊆ coΠℓ₊₁`, and `Πℓ ⊆ coΣℓ₊₁`.
pub fn inclusion_edges(max_ell: usize) -> Vec<InclusionEdge> {
    let mut edges = Vec::new();
    for l in 0..max_ell {
        // In-hierarchy edges (by definition: dummy moves).
        for (lower, upper) in [
            (ClassId::Sigma(l), ClassId::Sigma(l + 1)),
            (ClassId::Sigma(l), ClassId::Pi(l + 1)),
            (ClassId::Pi(l), ClassId::Sigma(l + 1)),
            (ClassId::Pi(l), ClassId::Pi(l + 1)),
            (ClassId::CoSigma(l), ClassId::CoSigma(l + 1)),
            (ClassId::CoSigma(l), ClassId::CoPi(l + 1)),
            (ClassId::CoPi(l), ClassId::CoSigma(l + 1)),
            (ClassId::CoPi(l), ClassId::CoPi(l + 1)),
        ] {
            edges.push(InclusionEdge {
                lower,
                upper,
                kind: kind_of(lower, upper),
                justification: "definition (dummy moves)",
            });
        }
        // Cross-hierarchy edges (Proposition 39 and duality).
        for (lower, upper) in [
            (ClassId::CoSigma(l), ClassId::Pi(l + 1)),
            (ClassId::CoPi(l), ClassId::Sigma(l + 1)),
            (ClassId::Sigma(l), ClassId::CoPi(l + 1)),
            (ClassId::Pi(l), ClassId::CoSigma(l + 1)),
        ] {
            edges.push(InclusionEdge {
                lower,
                upper,
                kind: kind_of(lower, upper),
                justification: "Proposition 39 and duality",
            });
        }
    }
    edges
}

/// Figure 11's thick-bordered classes — the "meaningful" chain on graphs of
/// bounded structural degree: `Π₀ ⊊ Σ₁ ⊊ Π₂ ⊊ Σ₃ ⊊ …` (alternating
/// `Π`-even / `Σ`-odd).
pub fn bounded_degree_chain(levels: usize) -> Vec<ClassId> {
    (0..levels)
        .map(|l| {
            if l % 2 == 0 {
                ClassId::Pi(l)
            } else {
                ClassId::Sigma(l)
            }
        })
        .collect()
}

/// Whether a class is on the thick chain (its level's "strong side").
pub fn is_thick(c: ClassId) -> bool {
    matches!(
        (c, c.ell() % 2),
        (ClassId::Pi(_), 0) | (ClassId::Sigma(_), 1)
    )
}

fn kind_of(lower: ClassId, upper: ClassId) -> EdgeKind {
    // Figure 11: inclusions *into* the thick chain classes are strict; the
    // inclusions from a thick class into the following weak-side class (on
    // either hierarchy) collapse to equalities on bounded structural
    // degree. Mirrored for the complement hierarchy by duality.
    let upper_thick_side = match upper {
        ClassId::Pi(l) | ClassId::CoPi(l) => l % 2 == 0,
        ClassId::Sigma(l) | ClassId::CoSigma(l) => l % 2 == 1,
    };
    let lower_thick_side = match lower {
        ClassId::Pi(l) | ClassId::CoPi(l) => l % 2 == 0,
        ClassId::Sigma(l) | ClassId::CoSigma(l) => l % 2 == 1,
    };
    if lower_thick_side && !upper_thick_side {
        EdgeKind::EqualityOnBoundedDegree
    } else {
        EdgeKind::ProvedStrict
    }
}

/// The recorded pairwise distinctness results on each level: classes on the
/// same level are pairwise distinct even on bounded structural degree
/// (Figure 11 caption).
pub fn same_level_distinctions(ell: usize) -> Vec<(ClassId, ClassId, &'static str)> {
    let (s, p, cs, cp) = (
        ClassId::Sigma(ell),
        ClassId::Pi(ell),
        ClassId::CoSigma(ell),
        ClassId::CoPi(ell),
    );
    vec![
        (s, p, "Theorem 33 / Corollary 36 and duality"),
        (s, cs, "Corollary 38 (not closed under complement)"),
        (s, cp, "Corollary 38"),
        (p, cs, "Corollary 38"),
        (p, cp, "Corollary 38"),
        (cs, cp, "Theorem 33 / Corollary 36 and duality"),
    ]
}

/// Whether `lower ⊆ upper` follows from the recorded edges (reflexive and
/// transitive closure up to the given level bound).
pub fn is_included(lower: ClassId, upper: ClassId, max_ell: usize) -> bool {
    if lower == upper {
        return true;
    }
    let edges = inclusion_edges(max_ell);
    // BFS over the edge relation.
    let mut frontier = vec![lower];
    let mut seen = vec![lower];
    while let Some(c) = frontier.pop() {
        for e in edges.iter().filter(|e| e.lower == c) {
            if e.upper == upper {
                return true;
            }
            if !seen.contains(&e.upper) {
                seen.push(e.upper);
                frontier.push(e.upper);
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::Hierarchy;

    #[test]
    fn edges_increase_level_by_one() {
        for e in inclusion_edges(4) {
            assert_eq!(
                e.upper.ell(),
                e.lower.ell() + 1,
                "{} ⊆ {}",
                e.lower,
                e.upper
            );
        }
    }

    #[test]
    fn lp_is_included_in_everything_one_up() {
        assert!(is_included(ClassId::LP, ClassId::NLP, 3));
        assert!(is_included(ClassId::LP, ClassId::Pi(1), 3));
        assert!(is_included(ClassId::LP, ClassId::CoPi(1), 3));
        assert!(is_included(ClassId::CO_LP, ClassId::Pi(1), 3));
    }

    #[test]
    fn inclusion_is_transitive_up_the_chain() {
        assert!(is_included(ClassId::LP, ClassId::Sigma(3), 4));
        assert!(is_included(ClassId::CoSigma(0), ClassId::Sigma(3), 4));
        assert!(!is_included(ClassId::Sigma(3), ClassId::LP, 4));
    }

    #[test]
    fn same_level_classes_are_incomparable_in_the_edge_relation() {
        assert!(!is_included(ClassId::NLP, ClassId::Pi(1), 4));
        assert!(!is_included(ClassId::Pi(1), ClassId::NLP, 4));
        assert!(!is_included(ClassId::NLP, ClassId::CO_NLP, 4));
    }

    #[test]
    fn thick_chain_alternates() {
        let chain = bounded_degree_chain(5);
        assert_eq!(
            chain,
            vec![
                ClassId::Pi(0),
                ClassId::Sigma(1),
                ClassId::Pi(2),
                ClassId::Sigma(3),
                ClassId::Pi(4)
            ]
        );
        assert!(chain.iter().all(|&c| is_thick(c)));
        assert!(!is_thick(ClassId::Sigma(0)));
        assert!(!is_thick(ClassId::Pi(1)));
    }

    #[test]
    fn consecutive_thick_classes_are_connected_by_strict_edges() {
        let edges = inclusion_edges(5);
        for w in bounded_degree_chain(5).windows(2) {
            let e = edges
                .iter()
                .find(|e| e.lower == w[0] && e.upper == w[1])
                .expect("chain edge exists");
            assert_eq!(e.kind, EdgeKind::ProvedStrict, "{} ⊊ {}", w[0], w[1]);
        }
    }

    #[test]
    fn thick_to_weak_edges_are_dashed() {
        let edges = inclusion_edges(3);
        // Σ1 (thick) ⊆ Σ2 (weak side): dashed.
        let e = edges
            .iter()
            .find(|e| e.lower == ClassId::Sigma(1) && e.upper == ClassId::Sigma(2))
            .unwrap();
        assert_eq!(e.kind, EdgeKind::EqualityOnBoundedDegree);
        // Σ0 (weak) ⊆ Σ1 (thick): solid.
        let e = edges
            .iter()
            .find(|e| e.lower == ClassId::Sigma(0) && e.upper == ClassId::Sigma(1))
            .unwrap();
        assert_eq!(e.kind, EdgeKind::ProvedStrict);
    }

    #[test]
    fn distinctions_cover_all_pairs() {
        let d = same_level_distinctions(2);
        assert_eq!(d.len(), 6);
        for (a, b, why) in d {
            assert_ne!(a, b);
            assert_eq!(a.ell(), 2);
            assert_eq!(b.ell(), 2);
            assert!(!why.is_empty());
        }
    }

    #[test]
    fn complement_hierarchy_mirrors_the_main_one() {
        let edges = inclusion_edges(3);
        for e in &edges {
            if e.lower.hierarchy() == Hierarchy::Lp && e.upper.hierarchy() == Hierarchy::Lp {
                let mirrored = edges
                    .iter()
                    .any(|f| f.lower == e.lower.complement() && f.upper == e.upper.complement());
                assert!(mirrored, "missing mirror of {} ⊆ {}", e.lower, e.upper);
            }
        }
    }
}
