use std::fmt;

/// The two players of the certificate game (Section 2.1): Eve quantifies
/// existentially, Adam universally.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Player {
    /// The existential player (tries to prove membership).
    Eve,
    /// The universal player (tries to disprove membership).
    Adam,
}

impl Player {
    /// The opponent.
    pub fn opponent(self) -> Player {
        match self {
            Player::Eve => Player::Adam,
            Player::Adam => Player::Eve,
        }
    }
}

impl fmt::Display for Player {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Player::Eve => write!(f, "Eve"),
            Player::Adam => write!(f, "Adam"),
        }
    }
}

/// Which of the two hierarchies a class belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Hierarchy {
    /// The local-polynomial hierarchy itself.
    Lp,
    /// Its complement hierarchy (`co`-classes).
    CoLp,
}

/// A class of the local-polynomial hierarchy or its complement hierarchy
/// (Figures 1 and 11): `Σℓ^LP`, `Πℓ^LP`, `coΣℓ^LP`, `coΠℓ^LP`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ClassId {
    /// `Σℓ^LP` — Eve moves first (`ℓ` certificate moves).
    Sigma(usize),
    /// `Πℓ^LP` — Adam moves first.
    Pi(usize),
    /// `coΣℓ^LP` — complements of `Σℓ^LP` properties.
    CoSigma(usize),
    /// `coΠℓ^LP` — complements of `Πℓ^LP` properties.
    CoPi(usize),
}

impl ClassId {
    /// `LP = Σ₀^LP`.
    pub const LP: ClassId = ClassId::Sigma(0);
    /// `NLP = Σ₁^LP`.
    pub const NLP: ClassId = ClassId::Sigma(1);
    /// `coLP = coΣ₀^LP`.
    pub const CO_LP: ClassId = ClassId::CoSigma(0);
    /// `coNLP = coΣ₁^LP`.
    pub const CO_NLP: ClassId = ClassId::CoSigma(1);

    /// The number of certificate moves `ℓ`.
    pub fn ell(self) -> usize {
        match self {
            ClassId::Sigma(l) | ClassId::Pi(l) | ClassId::CoSigma(l) | ClassId::CoPi(l) => l,
        }
    }

    /// Which hierarchy the class lives in.
    pub fn hierarchy(self) -> Hierarchy {
        match self {
            ClassId::Sigma(_) | ClassId::Pi(_) => Hierarchy::Lp,
            ClassId::CoSigma(_) | ClassId::CoPi(_) => Hierarchy::CoLp,
        }
    }

    /// The first player of the underlying game (for `ℓ = 0` there are no
    /// moves; by convention we report Eve).
    pub fn first_player(self) -> Player {
        match self {
            ClassId::Sigma(_) | ClassId::CoSigma(_) => Player::Eve,
            ClassId::Pi(_) | ClassId::CoPi(_) => Player::Adam,
        }
    }

    /// The complement class: `L ↦ {complement of L}` maps `Σℓ ↔ coΣℓ` and
    /// `Πℓ ↔ coΠℓ`.
    pub fn complement(self) -> ClassId {
        match self {
            ClassId::Sigma(l) => ClassId::CoSigma(l),
            ClassId::Pi(l) => ClassId::CoPi(l),
            ClassId::CoSigma(l) => ClassId::Sigma(l),
            ClassId::CoPi(l) => ClassId::Pi(l),
        }
    }

    /// The class of the same level with the other first player
    /// (`Σℓ ↔ Πℓ`).
    pub fn dual_start(self) -> ClassId {
        match self {
            ClassId::Sigma(l) => ClassId::Pi(l),
            ClassId::Pi(l) => ClassId::Sigma(l),
            ClassId::CoSigma(l) => ClassId::CoPi(l),
            ClassId::CoPi(l) => ClassId::CoSigma(l),
        }
    }

    /// The restriction of this class to single-node graphs is the
    /// corresponding class of the classical polynomial hierarchy
    /// (Section 4, "Connection to standard complexity classes"); this
    /// returns its conventional name.
    pub fn node_restriction_name(self) -> String {
        // On NODE, the hierarchy and its complement hierarchy coincide, and
        // Σ/Π keep their roles.
        match self {
            ClassId::Sigma(0) | ClassId::CoSigma(0) | ClassId::Pi(0) | ClassId::CoPi(0) => {
                "P".to_owned()
            }
            ClassId::Sigma(1) | ClassId::CoSigma(1) => "NP".to_owned(),
            ClassId::Pi(1) | ClassId::CoPi(1) => "coNP".to_owned(),
            ClassId::Sigma(l) | ClassId::CoSigma(l) => format!("Sigma{l}^p"),
            ClassId::Pi(l) | ClassId::CoPi(l) => format!("Pi{l}^p"),
        }
    }
}

impl fmt::Display for ClassId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClassId::Sigma(0) => write!(f, "LP"),
            ClassId::Sigma(1) => write!(f, "NLP"),
            ClassId::Sigma(l) => write!(f, "Σ{l}^LP"),
            ClassId::Pi(l) => write!(f, "Π{l}^LP"),
            ClassId::CoSigma(0) => write!(f, "coLP"),
            ClassId::CoSigma(1) => write!(f, "coNLP"),
            ClassId::CoSigma(l) => write!(f, "coΣ{l}^LP"),
            ClassId::CoPi(l) => write!(f, "coΠ{l}^LP"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_constants() {
        assert_eq!(ClassId::LP.to_string(), "LP");
        assert_eq!(ClassId::NLP.to_string(), "NLP");
        assert_eq!(ClassId::CO_NLP.to_string(), "coNLP");
        assert_eq!(ClassId::Pi(2).to_string(), "Π2^LP");
    }

    #[test]
    fn complement_is_involutive() {
        for c in [
            ClassId::Sigma(3),
            ClassId::Pi(0),
            ClassId::CoSigma(2),
            ClassId::CoPi(5),
        ] {
            assert_eq!(c.complement().complement(), c);
            assert_ne!(c.complement().hierarchy(), c.hierarchy());
            assert_eq!(c.complement().ell(), c.ell());
        }
    }

    #[test]
    fn first_player_matches_definition() {
        assert_eq!(ClassId::Sigma(2).first_player(), Player::Eve);
        assert_eq!(ClassId::Pi(2).first_player(), Player::Adam);
        assert_eq!(Player::Eve.opponent(), Player::Adam);
    }

    #[test]
    fn node_restrictions_recover_the_polynomial_hierarchy() {
        assert_eq!(ClassId::LP.node_restriction_name(), "P");
        assert_eq!(ClassId::CO_LP.node_restriction_name(), "P");
        assert_eq!(ClassId::NLP.node_restriction_name(), "NP");
        assert_eq!(ClassId::Pi(1).node_restriction_name(), "coNP");
        assert_eq!(ClassId::Sigma(2).node_restriction_name(), "Sigma2^p");
    }
}
