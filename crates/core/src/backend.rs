//! The CNF certificate-game backend: compiles `ℓ ≤ 1` games to SAT and
//! decides them with the `lph-sat` CDCL solver, scaling far beyond the
//! exhaustive move enumeration of [`decide_game`].
//!
//! # How the compilation works
//!
//! An arbiter is a LOCAL machine, so after `R` rounds a node's verdict
//! depends only on the inputs (labels, identifiers, degrees, certificates)
//! of nodes within distance `R − 1` — round-1 inboxes are empty, and a
//! message sent in round `k` arrives in round `k + 1`. The backend
//! exploits this: for each node `v` it extracts the ball `N_R(v)` (whose
//! interior nodes keep their degrees), replays the arbiter on that small
//! subgraph for **every** combination of certificates of the inner ball
//! `N_{R−1}(v)`, and records `v`'s verdict. The radius is discovered
//! adaptively: a replay that runs more than `R` rounds bumps `R`, and each
//! combination is run under two paddings of the boundary ring (empty vs.
//! all-ones certificates) — a verdict that differs between the paddings
//! falsifies the locality assumption and also bumps `R`. Arbiters that
//! never stabilize are reported as [`GameError::BackendUnsupported`]
//! rather than silently mis-encoded.
//!
//! The per-node truth tables then compile to CNF over choice variables
//! (each node's certificate choice is a binary-coded index into its
//! `(r, p)`-bounded option list, with out-of-range codes blocked):
//!
//! * **`Σ₁`** (Eve moves once): one blocking clause per *rejecting* table
//!   row. A model is exactly an assignment every node accepts; `UNSAT`
//!   means Eve has no witness.
//! * **`Π₁`** (Adam moves once): one fresh selector variable `r_v` per
//!   node with `∨_v r_v`, and a clause `¬r_v ∨ ¬row` per *accepting* row.
//!   A model is an assignment some selected node rejects — Adam's
//!   refutation; `UNSAT` means Eve wins every play.
//!
//! Either way, the extracted witness is replayed through the arbiter **on
//! the full graph** before the result is returned — the truth tables are
//! an optimization, never the authority.
//!
//! The UNSAT side is certified too: the solver runs with proof logging
//! on, and the logged RUP refutation is re-derived by the independent
//! `lph_sat::checker` before the verdict is returned. The verdict carries
//! the outcome as [`RefutationEvidence`] — [`GameBackend::Auto`] treats a
//! failed check like an unsupported game and falls back to the exhaustive
//! oracle, so an unchecked refutation never silently decides a game.
//!
//! `Σ₀` games have no certificates and run the arbiter once. Games with
//! `ℓ ≥ 2` are quantified-Boolean, not propositional; they stay on the
//! exhaustive game-tree search ([`GameBackend::Auto`] falls back
//! automatically).

use lph_graphs::{
    enumerate, BitString, CertificateAssignment, CertificateList, IdAssignment, LabeledGraph,
    NodeId,
};
use lph_machine::LocalOutcome;
use lph_sat::{check_refutation, Cnf, Lit, SolveOutcome, Solver, SolverConfig};

use crate::arbiter::Arbitrating;
use crate::class::Player;
use crate::game::{decide_game, GameError, GameLimits, GameResult};

/// Hard cap on the number of certificate combinations replayed per node
/// while building its local acceptance table. Beyond this the compilation
/// is no cheaper than exhaustive search and the backend bows out. Sized
/// so a degree-5 ball of 3-coloring certificates (7⁶ ≈ 118k rows) still
/// compiles — the per-node table is what makes the whole-graph move
/// space (7ⁿ) tractable, so the cap only guards genuinely global balls.
const TABLE_COMBO_CAP: usize = 1 << 17;

/// Cap on the adaptive locality radius probe.
const MAX_RADIUS: usize = 8;

/// Which engine decides a certificate game.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GameBackend {
    /// The exhaustive game-tree search of [`decide_game`]: enumerates
    /// every move. Complete for all `ℓ`, but bounded by the move-space
    /// guard — this is the differential oracle for small instances.
    Exhaustive,
    /// The CNF compilation described in the module docs, decided by the
    /// `lph-sat` CDCL solver. `ℓ ≤ 1` only; errors with
    /// [`GameError::BackendUnsupported`] where it does not apply.
    Cdcl,
    /// [`GameBackend::Cdcl`] for `ℓ = 1` games, falling back to
    /// [`GameBackend::Exhaustive`] whenever the CNF backend reports
    /// [`GameError::BackendUnsupported`] (and for all other `ℓ`).
    #[default]
    Auto,
}

impl GameBackend {
    /// The stable wire name used by external callers (the `lph-serve/1`
    /// protocol's optional `"backend"` request field).
    pub fn as_str(self) -> &'static str {
        match self {
            GameBackend::Exhaustive => "exhaustive",
            GameBackend::Cdcl => "cdcl",
            GameBackend::Auto => "auto",
        }
    }

    /// Parses a wire name produced by [`GameBackend::as_str`].
    pub fn parse(s: &str) -> Option<GameBackend> {
        match s {
            "exhaustive" => Some(GameBackend::Exhaustive),
            "cdcl" => Some(GameBackend::Cdcl),
            "auto" => Some(GameBackend::Auto),
            _ => None,
        }
    }
}

/// How an UNSAT-side verdict of the CDCL backend is certified.
///
/// Attached to [`GameResult::refutation`] whenever the verdict rests on
/// the solver's refutation rather than a replayed witness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RefutationEvidence {
    /// The independent RUP checker re-derived the solver's refutation
    /// from the game CNF.
    Checked {
        /// Steps in the logged proof (learned clauses + the empty clause).
        proof_steps: usize,
        /// Literals the checker assigned while re-deriving the steps.
        rup_propagations: u64,
    },
    /// The checker rejected (or could not complete) the refutation; the
    /// verdict is the solver's word alone. [`GameBackend::Auto`] discards
    /// such results and re-decides exhaustively.
    Unchecked {
        /// Whether the failure says the proof is about a *different*
        /// formula (unknown variables / deletions of absent clauses), as
        /// opposed to a derivation gap.
        cnf_mismatch: bool,
        /// The checker's error, human-readable.
        reason: String,
    },
}

impl RefutationEvidence {
    /// Whether the evidence is a checker-accepted proof.
    pub fn is_checked(&self) -> bool {
        matches!(self, RefutationEvidence::Checked { .. })
    }
}

/// Solves the certificate game with the selected [`GameBackend`].
///
/// Agrees with [`decide_game`] on `eve_wins` wherever both apply; the
/// CDCL backend additionally certifies any `Some` `winning_first_move` by
/// replaying it through the arbiter on the full graph.
///
/// # Errors
///
/// Returns [`GameError`] as for [`decide_game`]; the `Cdcl` backend
/// additionally reports [`GameError::BackendUnsupported`] for games it
/// cannot compile (`ℓ ≥ 2`, oversized local tables, arbiters without
/// per-node outcomes or with unstable locality).
pub fn decide_game_backend(
    arbiter: &dyn Arbitrating,
    g: &LabeledGraph,
    id: &IdAssignment,
    limits: &GameLimits,
    backend: GameBackend,
) -> Result<GameResult, GameError> {
    match backend {
        GameBackend::Exhaustive => decide_game(arbiter, g, id, limits),
        GameBackend::Cdcl => decide_game_cdcl(arbiter, g, id, limits),
        GameBackend::Auto => {
            if arbiter.spec().ell != 1 {
                return decide_game(arbiter, g, id, limits);
            }
            match decide_game_cdcl(arbiter, g, id, limits) {
                Err(GameError::BackendUnsupported { .. }) => decide_game(arbiter, g, id, limits),
                // An unchecked refutation is not evidence: re-decide with
                // the exhaustive oracle rather than trust the solver.
                Ok(r) if matches!(r.refutation, Some(RefutationEvidence::Unchecked { .. })) => {
                    decide_game(arbiter, g, id, limits)
                }
                other => other,
            }
        }
    }
}

/// One node's local acceptance table: `verdicts[rank]` is the node's
/// verdict when the nodes of `support` hold the certificate options coded
/// by `rank` (mixed-radix, first support node most significant).
struct NodeTable {
    support: Vec<NodeId>,
    verdicts: Vec<bool>,
}

/// The binary choice encoding: node `u`'s certificate option index is the
/// little-endian value of variables `var_base[u] .. var_base[u] + bits[u]`.
struct Encoding {
    cnf: Cnf,
    var_base: Vec<usize>,
    bits: Vec<usize>,
}

fn ceil_log2(m: usize) -> usize {
    if m <= 1 {
        0
    } else {
        (usize::BITS - (m - 1).leading_zeros()) as usize
    }
}

/// Mixed-radix decode of `rank` into one digit per entry of `ms` (first
/// entry most significant) — the shared convention between table building
/// and clause emission.
fn combo_digits(rank: usize, ms: &[usize]) -> Vec<usize> {
    let mut digits = vec![0; ms.len()];
    let mut code = rank;
    for i in (0..ms.len()).rev() {
        digits[i] = code % ms[i];
        code /= ms[i];
    }
    digits
}

fn run_outcome(
    arbiter: &dyn Arbitrating,
    g: &LabeledGraph,
    id: &IdAssignment,
    certs: Vec<BitString>,
    limits: &GameLimits,
    runs: &mut u64,
) -> Result<LocalOutcome, GameError> {
    *runs += 1;
    if *runs > limits.max_runs {
        return Err(GameError::BudgetExceeded {
            limit: limits.max_runs,
        });
    }
    let assignment = CertificateAssignment::from_vec(g, certs).expect("one certificate per node");
    let list = CertificateList::new().extended(assignment);
    arbiter
        .outcome(g, id, &list, &limits.exec)?
        .ok_or_else(|| GameError::BackendUnsupported {
            reason: "arbiter does not report per-node outcomes".into(),
        })
}

/// Builds the local acceptance table of node `v`, discovering the needed
/// radius adaptively (see the module docs).
#[allow(clippy::too_many_arguments)]
fn build_table(
    arbiter: &dyn Arbitrating,
    g: &LabeledGraph,
    id: &IdAssignment,
    budgets: &[usize],
    options: &[Vec<BitString>],
    v: NodeId,
    limits: &GameLimits,
    runs: &mut u64,
) -> Result<NodeTable, GameError> {
    let mut radius = 1;
    'radius: loop {
        if radius > MAX_RADIUS {
            return Err(GameError::BackendUnsupported {
                reason: format!(
                    "locality of node {} did not stabilize within radius {MAX_RADIUS}",
                    v.0
                ),
            });
        }
        let ball = g.neighborhood(v, radius);
        let inner_set: Vec<bool> = {
            let mut inner = vec![false; g.node_count()];
            for w in g.ball(v, radius - 1) {
                inner[w.0] = true;
            }
            inner
        };
        let inner: Vec<usize> = (0..ball.members.len())
            .filter(|&i| inner_set[ball.members[i].0])
            .collect();
        let ring: Vec<usize> = (0..ball.members.len())
            .filter(|&i| !inner_set[ball.members[i].0])
            .collect();
        let ms: Vec<usize> = inner
            .iter()
            .map(|&i| options[ball.members[i].0].len())
            .collect();
        let combos = ms
            .iter()
            .try_fold(1usize, |acc, &m| {
                acc.checked_mul(m).filter(|&c| c <= TABLE_COMBO_CAP)
            })
            .ok_or_else(|| GameError::BackendUnsupported {
                reason: format!(
                    "local certificate table of node {} exceeds {TABLE_COMBO_CAP} rows",
                    v.0
                ),
            })?;
        let sub_id = IdAssignment::from_vec(
            &ball.graph,
            ball.members.iter().map(|&w| id.id(w).clone()).collect(),
        )
        .expect("one identifier per ball member");

        let mut verdicts = Vec::with_capacity(combos);
        for rank in 0..combos {
            let digits = combo_digits(rank, &ms);
            let mut certs = vec![BitString::new(); ball.members.len()];
            for (d, &i) in digits.iter().zip(&inner) {
                certs[i] = options[ball.members[i].0][*d].clone();
            }
            // Padding A: boundary-ring certificates empty.
            let out_a = run_outcome(arbiter, &ball.graph, &sub_id, certs.clone(), limits, runs)?;
            let verdict = out_a.verdicts[ball.center_local.0];
            if ring.is_empty() {
                // The ball is the whole (connected) graph: the replay IS
                // the real run, no locality argument needed.
                verdicts.push(verdict);
                continue;
            }
            if out_a.rounds > radius {
                radius = out_a.rounds;
                continue 'radius;
            }
            // Padding B: boundary-ring certificates all-ones at budget.
            let mut certs_b = certs;
            for &i in &ring {
                let b = budgets[ball.members[i].0];
                certs_b[i] = BitString::from_bits01(&"1".repeat(b));
            }
            let out_b = run_outcome(arbiter, &ball.graph, &sub_id, certs_b, limits, runs)?;
            if out_b.rounds > radius {
                radius = out_b.rounds;
                continue 'radius;
            }
            if out_b.verdicts[ball.center_local.0] != verdict {
                // The verdict leaked past the assumed radius: grow it.
                radius += 1;
                continue 'radius;
            }
            verdicts.push(verdict);
        }
        return Ok(NodeTable {
            support: inner.iter().map(|&i| ball.members[i]).collect(),
            verdicts,
        });
    }
}

/// Allocates the per-node choice variables and blocks out-of-range codes.
fn encode_choices(options: &[Vec<BitString>]) -> Encoding {
    let mut cnf = Cnf::new();
    let n = options.len();
    let mut var_base = vec![0; n];
    let mut bits = vec![0; n];
    for (u, opts) in options.iter().enumerate() {
        let m = opts.len();
        let k = ceil_log2(m);
        var_base[u] = cnf.new_vars(k);
        bits[u] = k;
        for bad in m..(1usize << k) {
            cnf.add_clause((0..k).map(|j| Lit::with_sign(var_base[u] + j, (bad >> j) & 1 == 0)));
        }
    }
    Encoding {
        cnf,
        var_base,
        bits,
    }
}

/// The clause asserting "the support's choices differ from this table
/// row": one literal per code bit, with the opposite polarity.
fn row_blocking_lits(
    table: &NodeTable,
    rank: usize,
    options: &[Vec<BitString>],
    enc: &Encoding,
) -> Vec<Lit> {
    let ms: Vec<usize> = table.support.iter().map(|u| options[u.0].len()).collect();
    let digits = combo_digits(rank, &ms);
    let mut clause = Vec::new();
    for (digit, &u) in digits.iter().zip(&table.support) {
        for j in 0..enc.bits[u.0] {
            let bit = (digit >> j) & 1 == 1;
            clause.push(Lit::with_sign(enc.var_base[u.0] + j, !bit));
        }
    }
    clause
}

/// Reads the certificate assignment chosen by a SAT model.
fn decode_model(
    model: &[bool],
    g: &LabeledGraph,
    options: &[Vec<BitString>],
    enc: &Encoding,
) -> CertificateAssignment {
    let certs: Vec<BitString> = options
        .iter()
        .enumerate()
        .map(|(u, opts)| {
            let mut code = 0usize;
            for j in 0..enc.bits[u] {
                if model[enc.var_base[u] + j] {
                    code |= 1 << j;
                }
            }
            opts[code].clone()
        })
        .collect();
    CertificateAssignment::from_vec(g, certs).expect("one certificate per node")
}

fn decide_game_cdcl(
    arbiter: &dyn Arbitrating,
    g: &LabeledGraph,
    id: &IdAssignment,
    limits: &GameLimits,
) -> Result<GameResult, GameError> {
    let _span = lph_trace::span("game/cdcl");
    let spec = arbiter.spec().clone();
    if !id.is_locally_unique(g, spec.r_id) {
        return Err(GameError::IdsNotAdmissible { r_id: spec.r_id });
    }
    if spec.ell == 0 {
        let accepted = arbiter.accepts(g, id, &CertificateList::new(), &limits.exec)?;
        return Ok(GameResult {
            eve_wins: accepted,
            runs: 1,
            winning_first_move: None,
            refutation: None,
        });
    }
    if spec.ell > 1 {
        return Err(GameError::BackendUnsupported {
            reason: format!(
                "CNF compilation covers ℓ ≤ 1 games (ℓ ≥ 2 is quantified-Boolean), got ℓ = {}",
                spec.ell
            ),
        });
    }

    let budgets = spec.budgets(g, id, limits.cap_for_move(0));
    let options: Vec<Vec<BitString>> = budgets
        .iter()
        .map(|&b| enumerate::bitstrings_up_to(b))
        .collect();

    let mut runs = 0u64;
    let tables = {
        let _compile = lph_trace::span("game/cdcl_compile");
        let tables: Result<Vec<NodeTable>, GameError> = g
            .nodes()
            .map(|v| build_table(arbiter, g, id, &budgets, &options, v, limits, &mut runs))
            .collect();
        lph_trace::add("game/table_runs", runs);
        tables?
    };

    let mut enc = encode_choices(&options);
    match spec.first {
        Player::Eve => {
            for table in &tables {
                for (rank, &ok) in table.verdicts.iter().enumerate() {
                    if !ok {
                        enc.cnf
                            .add_clause(row_blocking_lits(table, rank, &options, &enc));
                    }
                }
            }
        }
        Player::Adam => {
            let selectors: Vec<usize> = tables.iter().map(|_| enc.cnf.new_var()).collect();
            enc.cnf.add_clause(selectors.iter().map(|&s| Lit::pos(s)));
            for (table, &s) in tables.iter().zip(&selectors) {
                for (rank, &ok) in table.verdicts.iter().enumerate() {
                    if ok {
                        let mut clause = vec![Lit::neg(s)];
                        clause.extend(row_blocking_lits(table, rank, &options, &enc));
                        enc.cnf.add_clause(clause);
                    }
                }
            }
        }
    }
    lph_trace::add("game/cnf_vars", enc.cnf.num_vars() as u64);
    lph_trace::add("game/cnf_clauses", enc.cnf.clauses().len() as u64);

    let mut solver = Solver::with_config(
        &enc.cnf,
        SolverConfig {
            max_conflicts: Some(limits.max_runs),
            proof_log: true,
            ..SolverConfig::default()
        },
    );
    let eve_moves_first = spec.first == Player::Eve;
    match solver.solve() {
        SolveOutcome::Unknown => Err(GameError::BudgetExceeded {
            limit: limits.max_runs,
        }),
        SolveOutcome::Unsat => {
            // Certify the refutation: the independent checker re-derives
            // the solver's proof from the game CNF, so "no witness" is
            // never taken on the solver's word alone.
            let proof = solver.take_proof().expect("proof logging is on");
            let evidence = match check_refutation(&enc.cnf, &proof) {
                Ok(stats) => RefutationEvidence::Checked {
                    proof_steps: proof.len(),
                    rup_propagations: stats.propagations,
                },
                Err(e) => RefutationEvidence::Unchecked {
                    cnf_mismatch: e.is_cnf_mismatch(),
                    reason: e.to_string(),
                },
            };
            lph_trace::add("game/refutations_checked", u64::from(evidence.is_checked()));
            Ok(GameResult {
                eve_wins: !eve_moves_first,
                runs,
                winning_first_move: None,
                refutation: Some(evidence),
            })
        }
        SolveOutcome::Sat(model) => {
            let assignment = decode_model(&model, g, &options, &enc);
            // Certify the witness on the full graph: the local tables are
            // an optimization, the arbiter is the authority.
            runs += 1;
            let list = CertificateList::new().extended(assignment.clone());
            let accepted = arbiter.accepts(g, id, &list, &limits.exec)?;
            if accepted != eve_moves_first {
                return Err(GameError::BackendUnsupported {
                    reason: "extracted certificate assignment failed its arbiter replay — \
                             the local acceptance tables are not faithful for this arbiter"
                        .into(),
                });
            }
            Ok(GameResult {
                eve_wins: eve_moves_first,
                runs,
                winning_first_move: Some(assignment),
                refutation: None,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbiters;
    use lph_graphs::generators;

    #[test]
    fn backend_wire_names_round_trip() {
        for b in [
            GameBackend::Exhaustive,
            GameBackend::Cdcl,
            GameBackend::Auto,
        ] {
            assert_eq!(GameBackend::parse(b.as_str()), Some(b));
        }
        assert_eq!(GameBackend::parse("sat"), None);
    }

    #[test]
    fn cdcl_agrees_with_exhaustive_on_three_coloring() {
        for (g, colorable) in [
            (generators::cycle(4), true),
            (generators::cycle(5), true),
            (generators::complete(3), true),
            (generators::complete(4), false),
        ] {
            let arb = arbiters::three_colorable_verifier();
            let id = IdAssignment::global(&g);
            let limits = GameLimits::default();
            let ex = decide_game_backend(&arb, &g, &id, &limits, GameBackend::Exhaustive).unwrap();
            let sat = decide_game_backend(&arb, &g, &id, &limits, GameBackend::Cdcl).unwrap();
            assert_eq!(ex.eve_wins, colorable);
            assert_eq!(sat.eve_wins, colorable, "CDCL disagrees on {g:?}");
            assert!(ex.refutation.is_none(), "exhaustive results carry none");
            if colorable {
                assert!(sat.winning_first_move.is_some());
                assert!(sat.refutation.is_none(), "witness verdicts carry none");
            } else {
                // Σ₁-no: the verdict must come with a checked refutation.
                let ev = sat.refutation.expect("UNSAT verdicts carry evidence");
                assert!(ev.is_checked(), "refutation not checked: {ev:?}");
            }
        }
    }

    #[test]
    fn pi1_yes_verdicts_carry_checked_refutations() {
        // ALL-SELECTED on an all-ones cycle: Eve wins the Π₁ game, which
        // the CDCL side establishes via UNSAT of the rejection encoding.
        use lph_graphs::BitString;
        let arb = arbiters::all_selected_pi1();
        let base = generators::cycle(5);
        let ones = vec![BitString::from_bits01("1"); base.node_count()];
        let g = base.with_labels(ones).expect("arity matches");
        let id = IdAssignment::global(&g);
        let res =
            decide_game_backend(&arb, &g, &id, &GameLimits::default(), GameBackend::Cdcl).unwrap();
        assert!(res.eve_wins);
        let ev = res.refutation.expect("Π₁-yes rests on an UNSAT answer");
        assert!(ev.is_checked(), "refutation not checked: {ev:?}");
        match ev {
            RefutationEvidence::Checked {
                proof_steps,
                rup_propagations,
            } => {
                assert!(proof_steps >= 1);
                assert!(rup_propagations > 0);
            }
            RefutationEvidence::Unchecked { .. } => unreachable!("is_checked held"),
        }
    }

    #[test]
    fn cdcl_scales_past_the_exhaustive_move_guard() {
        // Cycle of 60 nodes: the Σ₁ move space is 7⁶⁰ assignments, far past
        // the exhaustive enumerator's 2²⁰ guard — but 3-coloring tables are
        // 343 rows per node and CDCL settles the game.
        let g = generators::cycle(60);
        let arb = arbiters::three_colorable_verifier();
        let id = IdAssignment::global(&g);
        let limits = GameLimits::default();
        let err = decide_game_backend(&arb, &g, &id, &limits, GameBackend::Exhaustive).unwrap_err();
        assert!(matches!(err, GameError::MoveSpaceTooLarge { .. }));
        let res = decide_game_backend(&arb, &g, &id, &limits, GameBackend::Cdcl).unwrap();
        assert!(res.eve_wins, "even cycles are 3-colorable");
        assert!(res.winning_first_move.is_some());
    }

    #[test]
    fn auto_falls_back_for_higher_levels() {
        // Σ₂ game: quantified-Boolean, so Auto must route to exhaustive and
        // still produce an answer.
        use crate::arbiter::Arbiter;
        use crate::game::GameSpec;
        use lph_graphs::PolyBound;
        use lph_machine::{LocalAlgorithm, NodeCtx, NodeInput, NodeProgram, RoundAction};

        struct Match12;
        impl LocalAlgorithm for Match12 {
            fn spawn(&self, input: NodeInput) -> Box<dyn NodeProgram> {
                let ok =
                    input.certificates.len() == 2 && input.certificates[0] == input.certificates[1];
                Box::new(move |ctx: &mut NodeCtx, _r: usize, _i: &[BitString]| {
                    ctx.charge(1);
                    RoundAction::verdict(ok)
                })
            }
        }
        let spec = GameSpec::sigma(2, 1, 1, PolyBound::linear(0, 1));
        let arb = Arbiter::from_local("match", spec, Match12);
        let g = generators::path(2);
        let id = IdAssignment::global(&g);
        let limits = GameLimits {
            cert_len_cap: Some(1),
            ..GameLimits::default()
        };
        let auto = decide_game_backend(&arb, &g, &id, &limits, GameBackend::Auto).unwrap();
        assert!(!auto.eve_wins);
        let err = decide_game_backend(&arb, &g, &id, &limits, GameBackend::Cdcl).unwrap_err();
        assert!(matches!(err, GameError::BackendUnsupported { .. }));
    }
}
