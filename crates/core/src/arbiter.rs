use std::sync::OnceLock;

use lph_graphs::{CertificateList, IdAssignment, LabeledGraph};
use lph_machine::{
    run_local, run_tm, run_tm_compiled, CompiledTm, DistributedTm, ExecLimits, LocalAlgorithm,
    LocalOutcome, MachineError, TmBackend,
};

use crate::game::GameSpec;

/// Anything that can act as the judging machine of a certificate game:
/// implemented by [`Arbiter`] and by the Lemma 8 combinator
/// [`crate::restrictor::PermissiveArbiter`].
pub trait Arbitrating {
    /// The game parameters the machine is designed for.
    fn spec(&self) -> &GameSpec;

    /// Whether the machine accepts `(G, id, κ̄)` by unanimity.
    ///
    /// # Errors
    ///
    /// Propagates execution errors.
    fn accepts(
        &self,
        g: &LabeledGraph,
        id: &IdAssignment,
        certs: &CertificateList,
        limits: &ExecLimits,
    ) -> Result<bool, MachineError>;

    /// The full per-node outcome of one execution, if this implementation
    /// can report one. The CNF game backend (`crate::backend`) needs
    /// per-node verdicts and round counts to build local acceptance
    /// tables; implementations that only expose the global conjunction
    /// keep the default `Ok(None)` and are decided exhaustively.
    ///
    /// # Errors
    ///
    /// Propagates execution errors.
    fn outcome(
        &self,
        g: &LabeledGraph,
        id: &IdAssignment,
        certs: &CertificateList,
        limits: &ExecLimits,
    ) -> Result<Option<LocalOutcome>, MachineError> {
        let _ = (g, id, certs, limits);
        Ok(None)
    }
}

/// The implementation backing an arbiter: an honest Turing-machine table or
/// a metered closure algorithm (see `DESIGN.md` for the equivalence).
pub enum ArbiterKind {
    /// A raw distributed Turing machine.
    Tm(DistributedTm),
    /// A closure-based local algorithm with step metering.
    Local(Box<dyn LocalAlgorithm + Send + Sync>),
}

impl std::fmt::Debug for ArbiterKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArbiterKind::Tm(tm) => write!(f, "Tm({} states)", tm.state_count()),
            ArbiterKind::Local(_) => write!(f, "Local(..)"),
        }
    }
}

/// A named local-polynomial machine together with the parameters of the
/// game it arbitrates: a `Σℓ^LP`- or `Πℓ^LP`-arbiter (Section 4).
#[derive(Debug)]
pub struct Arbiter {
    name: String,
    spec: GameSpec,
    kind: ArbiterKind,
    exec_backend: TmBackend,
    /// Lazily compiled bytecode program for `ArbiterKind::Tm` under a
    /// compiling [`TmBackend`]; shared across the many replays a game
    /// search performs.
    compiled: OnceLock<CompiledTm>,
}

impl Arbiter {
    /// Wraps a closure algorithm.
    pub fn from_local(
        name: impl Into<String>,
        spec: GameSpec,
        alg: impl LocalAlgorithm + Send + Sync + 'static,
    ) -> Self {
        Arbiter {
            name: name.into(),
            spec,
            kind: ArbiterKind::Local(Box::new(alg)),
            exec_backend: TmBackend::default(),
            compiled: OnceLock::new(),
        }
    }

    /// Wraps a distributed Turing machine.
    pub fn from_tm(name: impl Into<String>, spec: GameSpec, tm: DistributedTm) -> Self {
        Arbiter {
            name: name.into(),
            spec,
            kind: ArbiterKind::Tm(tm),
            exec_backend: TmBackend::default(),
            compiled: OnceLock::new(),
        }
    }

    /// Selects the execution engine for `ArbiterKind::Tm` arbiters (no
    /// effect on `Local` ones). The default is [`TmBackend::Auto`]; the
    /// interpreter remains reachable for differential testing.
    #[must_use]
    pub fn with_exec_backend(mut self, backend: TmBackend) -> Self {
        self.exec_backend = backend;
        self
    }

    /// The configured execution engine.
    pub fn exec_backend(&self) -> TmBackend {
        self.exec_backend
    }

    /// The arbiter's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The game parameters.
    pub fn spec(&self) -> &GameSpec {
        &self.spec
    }

    /// The backing implementation.
    pub fn kind(&self) -> &ArbiterKind {
        &self.kind
    }

    /// Executes the arbiter on `(G, id, κ̄)`.
    ///
    /// # Errors
    ///
    /// Propagates execution errors ([`MachineError`]).
    pub fn run(
        &self,
        g: &LabeledGraph,
        id: &IdAssignment,
        certs: &CertificateList,
        limits: &ExecLimits,
    ) -> Result<LocalOutcome, MachineError> {
        match &self.kind {
            ArbiterKind::Local(alg) => run_local(alg.as_ref(), g, id, certs, limits),
            ArbiterKind::Tm(tm) => {
                let out = match self.exec_backend {
                    TmBackend::Interpreted => run_tm(tm, g, id, certs, limits)?,
                    TmBackend::Compiled | TmBackend::Auto => {
                        let ct = self.compiled.get_or_init(|| CompiledTm::compile(tm));
                        run_tm_compiled(ct, g, id, certs, limits)?
                    }
                };
                Ok(LocalOutcome {
                    rounds: out.rounds,
                    outputs: out.result_labels,
                    verdicts: out.verdicts,
                    accepted: out.accepted,
                    metrics: out.metrics,
                })
            }
        }
    }

    /// Whether the arbiter accepts `(G, id, κ̄)` by unanimity.
    ///
    /// # Errors
    ///
    /// Propagates execution errors.
    pub fn accepts(
        &self,
        g: &LabeledGraph,
        id: &IdAssignment,
        certs: &CertificateList,
        limits: &ExecLimits,
    ) -> Result<bool, MachineError> {
        Ok(self.run(g, id, certs, limits)?.accepted)
    }
}

impl Arbitrating for Arbiter {
    fn spec(&self) -> &GameSpec {
        Arbiter::spec(self)
    }

    fn accepts(
        &self,
        g: &LabeledGraph,
        id: &IdAssignment,
        certs: &CertificateList,
        limits: &ExecLimits,
    ) -> Result<bool, MachineError> {
        Arbiter::accepts(self, g, id, certs, limits)
    }

    fn outcome(
        &self,
        g: &LabeledGraph,
        id: &IdAssignment,
        certs: &CertificateList,
        limits: &ExecLimits,
    ) -> Result<Option<LocalOutcome>, MachineError> {
        self.run(g, id, certs, limits).map(Some)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::Player;
    use lph_graphs::{generators, PolyBound};
    use lph_machine::machines;

    fn spec0() -> GameSpec {
        GameSpec {
            ell: 0,
            first: Player::Eve,
            r_id: 1,
            r: 1,
            bound: PolyBound::linear(0, 1),
        }
    }

    #[test]
    fn tm_backed_arbiter_runs() {
        let arb = Arbiter::from_tm("all-selected", spec0(), machines::all_selected_decider());
        let g = generators::cycle(4);
        let id = IdAssignment::small(&g, 1);
        assert!(arb
            .accepts(&g, &id, &CertificateList::new(), &ExecLimits::default())
            .unwrap());
        assert_eq!(arb.name(), "all-selected");
        assert_eq!(arb.spec().ell, 0);
    }

    #[test]
    fn exec_backends_agree_on_tm_arbiters() {
        let g = generators::labeled_cycle(&["1", "0", "1"]);
        let id = IdAssignment::small(&g, 1);
        let mk = || Arbiter::from_tm("coloring", spec0(), machines::proper_coloring_verifier());
        let interp = mk()
            .with_exec_backend(TmBackend::Interpreted)
            .run(&g, &id, &CertificateList::new(), &ExecLimits::default())
            .unwrap();
        for backend in [TmBackend::Compiled, TmBackend::Auto] {
            let out = mk()
                .with_exec_backend(backend)
                .run(&g, &id, &CertificateList::new(), &ExecLimits::default())
                .unwrap();
            assert_eq!(interp.accepted, out.accepted);
            assert_eq!(interp.verdicts, out.verdicts);
            assert_eq!(interp.outputs, out.outputs);
            assert_eq!(interp.metrics.per_node, out.metrics.per_node);
        }
    }

    #[test]
    fn local_backed_arbiter_runs() {
        use lph_machine::{NodeCtx, NodeInput, NodeProgram, RoundAction};
        struct AcceptAll;
        impl LocalAlgorithm for AcceptAll {
            fn spawn(&self, _input: NodeInput) -> Box<dyn NodeProgram> {
                Box::new(
                    |ctx: &mut NodeCtx, _r: usize, _inbox: &[lph_graphs::BitString]| {
                        ctx.charge(1);
                        RoundAction::accept()
                    },
                )
            }
        }
        let arb = Arbiter::from_local("yes", spec0(), AcceptAll);
        let g = generators::path(3);
        let id = IdAssignment::global(&g);
        assert!(arb
            .accepts(&g, &id, &CertificateList::new(), &ExecLimits::default())
            .unwrap());
    }
}
