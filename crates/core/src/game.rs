use std::error::Error;
use std::fmt;

use lph_graphs::{
    enumerate, CertificateAssignment, CertificateList, IdAssignment, LabeledGraph, PolyBound,
};
use lph_machine::{ExecLimits, MachineError};

use crate::arbiter::Arbitrating;
use crate::class::Player;

/// The parameters of a certificate game (Section 4): `ℓ` moves starting
/// with `first`, identifiers `r_id`-locally unique, certificates
/// `(r, p)`-bounded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GameSpec {
    /// The number of certificate moves `ℓ`.
    pub ell: usize,
    /// Who moves first (`Eve` for `Σℓ`, `Adam` for `Πℓ`).
    pub first: Player,
    /// Local-uniqueness radius required of identifier assignments.
    pub r_id: usize,
    /// The neighborhood radius of the certificate bound.
    pub r: usize,
    /// The polynomial `p` of the `(r, p)`-bound.
    pub bound: PolyBound,
}

impl GameSpec {
    /// A `Σℓ` game (Eve first).
    pub fn sigma(ell: usize, r_id: usize, r: usize, bound: PolyBound) -> Self {
        GameSpec {
            ell,
            first: Player::Eve,
            r_id,
            r,
            bound,
        }
    }

    /// A `Πℓ` game (Adam first).
    pub fn pi(ell: usize, r_id: usize, r: usize, bound: PolyBound) -> Self {
        GameSpec {
            ell,
            first: Player::Adam,
            r_id,
            r,
            bound,
        }
    }

    /// The player making move `i` (0-indexed).
    pub fn player_of_move(&self, i: usize) -> Player {
        if i.is_multiple_of(2) {
            self.first
        } else {
            self.first.opponent()
        }
    }

    /// The per-node certificate length budgets implied by the `(r, p)`
    /// bound, optionally clamped by `cap`.
    pub fn budgets(&self, g: &LabeledGraph, id: &IdAssignment, cap: Option<usize>) -> Vec<usize> {
        CertificateAssignment::budget(g, id, self.r, &self.bound)
            .into_iter()
            .map(|b| cap.map_or(b, |c| b.min(c)))
            .collect()
    }
}

/// Budgets for the exhaustive game search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GameLimits {
    /// Clamp on per-node certificate lengths (the `(r, p)` budget can be
    /// astronomically larger than what a property needs; the paper's
    /// arbiters use structured certificates of known shape). `None` uses
    /// the raw `(r, p)` budget.
    pub cert_len_cap: Option<usize>,
    /// Optional tighter per-move clamps (entry `i` caps move `i`); falls
    /// back to `cert_len_cap` where absent. Structured games (e.g. the
    /// Example 4 arbiter, whose moves are pointer/bit/bit) use this to
    /// keep the search space honest but small.
    pub per_move_caps: Option<Vec<usize>>,
    /// Maximum number of arbiter executions before giving up.
    pub max_runs: u64,
    /// Per-execution limits.
    pub exec: ExecLimits,
}

impl Default for GameLimits {
    fn default() -> Self {
        GameLimits {
            cert_len_cap: Some(4),
            per_move_caps: None,
            max_runs: 2_000_000,
            exec: ExecLimits::default(),
        }
    }
}

impl GameLimits {
    /// The certificate-length cap for move `i`.
    pub(crate) fn cap_for_move(&self, i: usize) -> Option<usize> {
        match &self.per_move_caps {
            Some(caps) if i < caps.len() => Some(caps[i]),
            _ => self.cert_len_cap,
        }
    }
}

/// Why a game could not be solved.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GameError {
    /// The arbiter-execution budget was exhausted.
    BudgetExceeded {
        /// The configured budget.
        limit: u64,
    },
    /// The certificate space of a single move is too large to enumerate.
    MoveSpaceTooLarge {
        /// Number of certificate assignments in one move.
        combinations: u128,
    },
    /// The certificate space cannot even be *indexed* on this machine: the
    /// assignment count overflows `usize`. Distinct from
    /// [`GameError::MoveSpaceTooLarge`], which is a configured policy cap —
    /// this one is the hard address-space wall.
    CertificateSpaceTooLarge {
        /// Number of certificate assignments (saturating).
        combinations: u128,
    },
    /// A budget slice's length does not match the graph's node count.
    BudgetArityMismatch {
        /// Nodes in the graph.
        expected: usize,
        /// Budget entries supplied.
        got: usize,
    },
    /// The identifier assignment is not `r_id`-locally unique for the
    /// game's specification.
    IdsNotAdmissible {
        /// The required radius.
        r_id: usize,
    },
    /// The selected game backend cannot decide this instance (e.g. the
    /// CNF backend on a game with `ℓ ≥ 2`, or an arbiter that fails its
    /// locality audit). [`crate::backend::GameBackend::Auto`] treats this
    /// as "fall back to the exhaustive search".
    BackendUnsupported {
        /// Human-readable explanation.
        reason: String,
    },
    /// An arbiter execution failed.
    Machine(MachineError),
}

impl fmt::Display for GameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GameError::BudgetExceeded { limit } => {
                write!(f, "exceeded the budget of {limit} arbiter executions")
            }
            GameError::MoveSpaceTooLarge { combinations } => {
                write!(
                    f,
                    "a single move has {combinations} certificate assignments"
                )
            }
            GameError::CertificateSpaceTooLarge { combinations } => {
                write!(
                    f,
                    "certificate space of {combinations} assignments exceeds the address space"
                )
            }
            GameError::BudgetArityMismatch { expected, got } => {
                write!(
                    f,
                    "expected one budget per node ({expected}), got {got} entries"
                )
            }
            GameError::IdsNotAdmissible { r_id } => {
                write!(f, "identifier assignment is not {r_id}-locally unique")
            }
            GameError::BackendUnsupported { reason } => {
                write!(f, "game backend cannot decide this instance: {reason}")
            }
            GameError::Machine(e) => write!(f, "arbiter execution failed: {e}"),
        }
    }
}

impl Error for GameError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            GameError::Machine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MachineError> for GameError {
    fn from(e: MachineError) -> Self {
        GameError::Machine(e)
    }
}

/// The outcome of solving a certificate game.
#[derive(Debug, Clone)]
pub struct GameResult {
    /// Whether Eve has a winning strategy (i.e. the graph has the property
    /// arbitrated by the machine).
    pub eve_wins: bool,
    /// Number of arbiter executions performed.
    pub runs: u64,
    /// If the **first** player wins and `ℓ ≥ 1`: a winning first move.
    pub winning_first_move: Option<CertificateAssignment>,
    /// For verdicts the CDCL backend established by an UNSAT answer
    /// (Σ₁ "Eve has no witness" / Π₁ "no play refutes Eve"): the status of
    /// the machine-checked refutation proof. `None` for verdicts carried
    /// by a replayed witness or decided exhaustively.
    pub refutation: Option<crate::backend::RefutationEvidence>,
}

/// Enumerates every certificate assignment where node `u`'s certificate has
/// length at most `budgets[u]`.
///
/// The space has `Π_u (2^{b_u + 1} − 1)` elements; the caller must guard
/// against explosion (see [`GameLimits`]). Assignments are generated by
/// mixed-radix decoding of their rank (the last node is the
/// fastest-varying digit), fanned out over the `lph-runtime` worker pool;
/// the output is identical, element for element, to the sequential
/// odometer sweep this replaces.
///
/// # Errors
///
/// Returns [`GameError::BudgetArityMismatch`] unless `budgets` has exactly
/// one entry per node, and [`GameError::CertificateSpaceTooLarge`] when the
/// assignment count overflows `usize` (it used to panic on this — a
/// malformed large game must surface as a typed error, not abort the
/// process).
pub fn enumerate_certificates(
    g: &LabeledGraph,
    budgets: &[usize],
) -> Result<Vec<CertificateAssignment>, GameError> {
    let n = g.node_count();
    if budgets.len() != n {
        return Err(GameError::BudgetArityMismatch {
            expected: n,
            got: budgets.len(),
        });
    }
    let per_node: Vec<Vec<lph_graphs::BitString>> = budgets
        .iter()
        .map(|&b| enumerate::bitstrings_up_to(b))
        .collect();
    let total = per_node
        .iter()
        .map(Vec::len)
        .try_fold(1usize, usize::checked_mul)
        .ok_or(GameError::CertificateSpaceTooLarge {
            combinations: move_space_size(budgets),
        })?;
    Ok(lph_runtime::par_map_index(total, |rank| {
        let mut code = rank;
        let mut certs = vec![lph_graphs::BitString::new(); n];
        for pos in (0..n).rev() {
            let opts = &per_node[pos];
            certs[pos] = opts[code % opts.len()].clone();
            code /= opts.len();
        }
        CertificateAssignment::from_vec(g, certs).expect("one certificate per node")
    }))
}

fn move_space_size(budgets: &[usize]) -> u128 {
    budgets.iter().fold(1u128, |acc, &b| {
        acc.saturating_mul((1u128 << (b + 1)).saturating_sub(1))
    })
}

/// Solves the certificate game for `arbiter` on `(G, id)`: determines
/// whether Eve has a winning strategy when both players range over
/// length-bounded certificate assignments.
///
/// # Errors
///
/// Returns [`GameError`] if the identifiers are inadmissible, the move
/// space is too large (> 2²⁰ assignments per move), the run budget is
/// exhausted, or an arbiter execution fails.
pub fn decide_game(
    arbiter: &dyn Arbitrating,
    g: &LabeledGraph,
    id: &IdAssignment,
    limits: &GameLimits,
) -> Result<GameResult, GameError> {
    let spec = arbiter.spec().clone();
    if !id.is_locally_unique(g, spec.r_id) {
        return Err(GameError::IdsNotAdmissible { r_id: spec.r_id });
    }
    let mut moves_per_move: Vec<Vec<CertificateAssignment>> = Vec::with_capacity(spec.ell);
    for i in 0..spec.ell {
        let budgets = spec.budgets(g, id, limits.cap_for_move(i));
        let space = move_space_size(&budgets);
        if space > 1 << 20 {
            return Err(GameError::MoveSpaceTooLarge {
                combinations: space,
            });
        }
        moves_per_move.push(enumerate_certificates(g, &budgets)?);
    }
    decide_game_with(arbiter, g, id, &moves_per_move, limits)
}

/// Like [`decide_game`], but with the per-move certificate spaces supplied
/// by the caller. This is how *structured* games are solved — e.g. the
/// Fagin-compiled arbiters, whose certificates are relation encodings that
/// raw bit-string enumeration would never hit. Supplying only the
/// well-formed certificates is faithful by the restrictive-arbiter argument
/// of Lemma 8 (the compiled arbiters treat malformed moves exactly as a
/// violated restriction).
///
/// # Errors
///
/// Returns [`GameError`] as for [`decide_game`].
pub fn decide_game_with(
    arbiter: &dyn Arbitrating,
    g: &LabeledGraph,
    id: &IdAssignment,
    moves_per_move: &[Vec<CertificateAssignment>],
    limits: &GameLimits,
) -> Result<GameResult, GameError> {
    let spec = arbiter.spec().clone();
    if !id.is_locally_unique(g, spec.r_id) {
        return Err(GameError::IdsNotAdmissible { r_id: spec.r_id });
    }

    let mut runs: u64 = 0;
    let mut winning_first_move = None;

    // The recursion threads the whole game state; bundling it in a struct
    // would only rename the problem.
    #[allow(clippy::too_many_arguments)]
    fn eve_wins_from(
        arbiter: &dyn Arbitrating,
        g: &LabeledGraph,
        id: &IdAssignment,
        moves: &[Vec<CertificateAssignment>],
        prefix: &CertificateList,
        move_idx: usize,
        runs: &mut u64,
        limits: &GameLimits,
        winning_first: &mut Option<CertificateAssignment>,
    ) -> Result<bool, GameError> {
        let spec = arbiter.spec();
        if move_idx == spec.ell {
            *runs += 1;
            if *runs > limits.max_runs {
                return Err(GameError::BudgetExceeded {
                    limit: limits.max_runs,
                });
            }
            return Ok(arbiter.accepts(g, id, prefix, &limits.exec)?);
        }
        let player = spec.player_of_move(move_idx);
        for k in &moves[move_idx] {
            let ext = prefix.extended(k.clone());
            let sub = eve_wins_from(
                arbiter,
                g,
                id,
                moves,
                &ext,
                move_idx + 1,
                runs,
                limits,
                winning_first,
            )?;
            match player {
                Player::Eve if sub => {
                    if move_idx == 0 && spec.first == Player::Eve {
                        *winning_first = Some(k.clone());
                    }
                    return Ok(true);
                }
                Player::Adam if !sub => {
                    if move_idx == 0 && spec.first == Player::Adam {
                        *winning_first = Some(k.clone());
                    }
                    return Ok(false);
                }
                _ => {}
            }
        }
        Ok(player == Player::Adam)
    }

    let eve_wins = eve_wins_from(
        arbiter,
        g,
        id,
        moves_per_move,
        &CertificateList::new(),
        0,
        &mut runs,
        limits,
        &mut winning_first_move,
    )?;
    Ok(GameResult {
        eve_wins,
        runs,
        winning_first_move,
        refutation: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbiter::Arbiter;
    use lph_graphs::{generators, BitString};
    use lph_machine::{LocalAlgorithm, NodeCtx, NodeInput, NodeProgram, RoundAction};

    /// A 0-round-communication verifier: accepts iff the node's (single)
    /// certificate equals its label.
    struct CertEqualsLabel;
    impl LocalAlgorithm for CertEqualsLabel {
        fn spawn(&self, input: NodeInput) -> Box<dyn NodeProgram> {
            let ok = input.certificates.len() == 1 && input.certificates[0] == input.label;
            Box::new(move |ctx: &mut NodeCtx, _r: usize, _inbox: &[BitString]| {
                ctx.charge(1);
                RoundAction::verdict(ok)
            })
        }
    }

    fn sigma1_spec() -> GameSpec {
        GameSpec::sigma(1, 1, 1, PolyBound::linear(0, 1))
    }

    #[test]
    fn eve_finds_the_unique_witness() {
        let arb = Arbiter::from_local("cert=label", sigma1_spec(), CertEqualsLabel);
        let g = generators::labeled_path(&["1", "0"]);
        let id = IdAssignment::global(&g);
        let limits = GameLimits {
            cert_len_cap: Some(1),
            ..GameLimits::default()
        };
        let res = decide_game(&arb, &g, &id, &limits).unwrap();
        assert!(res.eve_wins);
        let w = res.winning_first_move.unwrap();
        assert_eq!(w.cert(lph_graphs::NodeId(0)), &BitString::from_bits01("1"));
        assert_eq!(w.cert(lph_graphs::NodeId(1)), &BitString::from_bits01("0"));
    }

    #[test]
    fn pi1_means_adam_moves_first() {
        // Π₁ with the same arbiter: Adam picks the certificates, so he can
        // always pick a wrong one — Eve loses on every graph with a node.
        let spec = GameSpec::pi(1, 1, 1, PolyBound::linear(0, 1));
        let arb = Arbiter::from_local("cert=label", spec, CertEqualsLabel);
        let g = generators::labeled_path(&["1", "0"]);
        let id = IdAssignment::global(&g);
        let limits = GameLimits {
            cert_len_cap: Some(1),
            ..GameLimits::default()
        };
        let res = decide_game(&arb, &g, &id, &limits).unwrap();
        assert!(!res.eve_wins);
        assert!(
            res.winning_first_move.is_some(),
            "Adam's refutation is recorded"
        );
    }

    #[test]
    fn zero_moves_is_plain_decision() {
        struct RejectAll;
        impl LocalAlgorithm for RejectAll {
            fn spawn(&self, _input: NodeInput) -> Box<dyn NodeProgram> {
                Box::new(|ctx: &mut NodeCtx, _r: usize, _i: &[BitString]| {
                    ctx.charge(1);
                    RoundAction::reject()
                })
            }
        }
        let spec = GameSpec::sigma(0, 1, 1, PolyBound::constant(0));
        let arb = Arbiter::from_local("no", spec, RejectAll);
        let g = generators::path(2);
        let id = IdAssignment::global(&g);
        let res = decide_game(&arb, &g, &id, &GameLimits::default()).unwrap();
        assert!(!res.eve_wins);
        assert_eq!(res.runs, 1);
    }

    #[test]
    fn sigma2_alternation() {
        // Arbiter: accepts iff Adam's certificate (move 2) equals Eve's
        // (move 1) at every node. Eve cannot win: Adam flips a bit.
        struct Match12;
        impl LocalAlgorithm for Match12 {
            fn spawn(&self, input: NodeInput) -> Box<dyn NodeProgram> {
                let ok =
                    input.certificates.len() == 2 && input.certificates[0] == input.certificates[1];
                Box::new(move |ctx: &mut NodeCtx, _r: usize, _i: &[BitString]| {
                    ctx.charge(1);
                    RoundAction::verdict(ok)
                })
            }
        }
        let spec = GameSpec::sigma(2, 1, 1, PolyBound::linear(0, 1));
        let arb = Arbiter::from_local("match", spec, Match12);
        let g = generators::path(2);
        let id = IdAssignment::global(&g);
        let limits = GameLimits {
            cert_len_cap: Some(1),
            ..GameLimits::default()
        };
        let res = decide_game(&arb, &g, &id, &limits).unwrap();
        assert!(!res.eve_wins, "Adam mismatches Eve's move");

        // Dually, an arbiter accepting iff the certificates *differ*
        // somewhere also loses for Eve (Adam copies her move) — but as a Π₂
        // game the roles flip and Eve wins (she answers Adam with a copy).
        struct Differ;
        impl LocalAlgorithm for Differ {
            fn spawn(&self, input: NodeInput) -> Box<dyn NodeProgram> {
                let same =
                    input.certificates.len() == 2 && input.certificates[0] == input.certificates[1];
                Box::new(move |ctx: &mut NodeCtx, _r: usize, _i: &[BitString]| {
                    ctx.charge(1);
                    RoundAction::verdict(same)
                })
            }
        }
        let spec = GameSpec::pi(2, 1, 1, PolyBound::linear(0, 1));
        let arb = Arbiter::from_local("copy", spec, Differ);
        let res = decide_game(&arb, &g, &id, &limits).unwrap();
        assert!(res.eve_wins, "Eve copies Adam's move");
    }

    #[test]
    fn budget_exhaustion_is_detected() {
        let arb = Arbiter::from_local("cert=label", sigma1_spec(), CertEqualsLabel);
        let g = generators::labeled_path(&["0", "1"]);
        let id = IdAssignment::global(&g);
        let limits = GameLimits {
            cert_len_cap: Some(1),
            max_runs: 1,
            ..GameLimits::default()
        };
        // "0" sorts late enough in the odometer that one run cannot settle it.
        let err = decide_game(&arb, &g, &id, &limits).unwrap_err();
        assert_eq!(err, GameError::BudgetExceeded { limit: 1 });
    }

    #[test]
    fn inadmissible_ids_are_rejected() {
        let arb = Arbiter::from_local("cert=label", sigma1_spec(), CertEqualsLabel);
        let g = generators::cycle(6);
        let id = IdAssignment::cyclic(&g, 2); // not 1-locally unique
        let err = decide_game(&arb, &g, &id, &GameLimits::default()).unwrap_err();
        assert_eq!(err, GameError::IdsNotAdmissible { r_id: 1 });
    }

    #[test]
    fn enumerate_certificates_counts() {
        let g = generators::path(2);
        // budgets [1, 0]: (2^2 - 1) * (2^1 - 1) = 3 * 1 = 3.
        let all = enumerate_certificates(&g, &[1, 0]).unwrap();
        assert_eq!(all.len(), 3);
        let mut dedup = all.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), 3);
    }

    #[test]
    fn enumerate_certificates_rejects_wrong_budget_arity() {
        let g = generators::path(3);
        let err = enumerate_certificates(&g, &[1, 0]).unwrap_err();
        assert_eq!(
            err,
            GameError::BudgetArityMismatch {
                expected: 3,
                got: 2
            }
        );
        let err = enumerate_certificates(&g, &[1, 0, 0, 0]).unwrap_err();
        assert!(matches!(err, GameError::BudgetArityMismatch { got: 4, .. }));
    }

    #[test]
    fn enumerate_certificates_reports_address_space_overflow() {
        // 40 nodes with 6-bit budgets: 127^40 ≫ 2^64 — this used to panic
        // with "certificate space exceeds the address space".
        let g = generators::cycle(40);
        let budgets = vec![6usize; 40];
        let err = enumerate_certificates(&g, &budgets).unwrap_err();
        match err {
            GameError::CertificateSpaceTooLarge { combinations } => {
                assert!(combinations > u128::from(u64::MAX));
            }
            other => panic!("expected CertificateSpaceTooLarge, got {other:?}"),
        }
        // And it propagates through `decide_game` as an error, not a panic:
        // budgets large enough to overflow always trip the move-space guard
        // first, so exercise the overflow path directly via the enumerator.
    }

    /// The sequential odometer the parallel rank decoding replaced, kept
    /// as the ordering oracle.
    fn enumerate_certificates_odometer(
        g: &LabeledGraph,
        budgets: &[usize],
    ) -> Vec<CertificateAssignment> {
        let per_node: Vec<Vec<lph_graphs::BitString>> = budgets
            .iter()
            .map(|&b| enumerate::bitstrings_up_to(b))
            .collect();
        let mut out = Vec::new();
        let mut current: Vec<usize> = vec![0; g.node_count()];
        loop {
            out.push(
                CertificateAssignment::from_vec(
                    g,
                    current
                        .iter()
                        .zip(&per_node)
                        .map(|(&i, opts)| opts[i].clone())
                        .collect(),
                )
                .expect("one certificate per node"),
            );
            let mut pos = g.node_count();
            loop {
                if pos == 0 {
                    return out;
                }
                pos -= 1;
                current[pos] += 1;
                if current[pos] < per_node[pos].len() {
                    break;
                }
                current[pos] = 0;
            }
        }
    }

    #[test]
    fn enumerate_certificates_matches_the_odometer_order() {
        for budgets in [vec![1usize, 0, 2], vec![0, 0, 0], vec![2, 2, 2]] {
            let g = generators::path(budgets.len());
            assert_eq!(
                enumerate_certificates(&g, &budgets).unwrap(),
                enumerate_certificates_odometer(&g, &budgets),
                "budgets {budgets:?}"
            );
        }
    }

    #[test]
    fn move_space_guard_triggers() {
        let arb = Arbiter::from_local("cert=label", sigma1_spec(), CertEqualsLabel);
        let g = generators::cycle(30);
        let id = IdAssignment::global(&g);
        let limits = GameLimits {
            cert_len_cap: Some(4),
            ..GameLimits::default()
        };
        let err = decide_game(&arb, &g, &id, &limits).unwrap_err();
        assert!(matches!(err, GameError::MoveSpaceTooLarge { .. }));
    }
}
