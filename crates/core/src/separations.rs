//! Executable separation constructions (Section 9.1).
//!
//! * [`prop21_fooling_pair`] — Proposition 21 (`LP ⊊ NLP`): an odd cycle
//!   `G` and the even cycle `G'` obtained by gluing two copies of it,
//!   sharing an identifier assignment such that **every** deterministic
//!   machine reaches node-wise identical verdicts on both — while only
//!   `G'` is 2-colorable.
//! * [`splice_cycle`] / [`pump_views`] — the cut-and-splice pumping of
//!   Proposition 23 (`coLP ⊄ NLP`): two nodes of a labeled cycle with
//!   identical radius-`r` views (labels, identifiers, certificates) are
//!   identified, removing the arc between them; every surviving node keeps
//!   its exact view, so any verifier's verdicts transfer.

use lph_graphs::{
    BitString, CertificateAssignment, CertificateList, GraphError, IdAssignment, LabeledGraph,
};
use lph_machine::{ExecLimits, LocalOutcome, MachineError};

use crate::arbiter::Arbiter;

/// The Proposition 21 construction: for an odd `n > 4·r_id + 1`, returns
/// `(G, id, G', id')` where `G = C_n` (unlabeled, i.e. all labels `1`),
/// `G'` is the "glued" cycle `C_{2n}`, and `id'` duplicates `id` on both
/// copies. `id` is `r_id`-locally unique on both.
///
/// # Panics
///
/// Panics if `n` is even or too small for the radius.
pub fn prop21_fooling_pair(
    n: usize,
    r_id: usize,
) -> (LabeledGraph, IdAssignment, LabeledGraph, IdAssignment) {
    assert!(n % 2 == 1, "the proof needs an odd cycle");
    assert!(
        n > 4 * r_id + 1,
        "n must exceed 4·r_id + 1 so ids can repeat"
    );
    let g = lph_graphs::generators::cycle(n);
    // Identifiers 0..n−1 around the cycle (globally unique on G).
    let width = (usize::BITS as usize - (n - 1).leading_zeros() as usize).max(1);
    let id = IdAssignment::from_vec(
        &g,
        (0..n).map(|i| BitString::from_usize(i, width)).collect(),
    )
    .expect("one id per node");
    let g2 = lph_graphs::generators::cycle(2 * n);
    let id2 = IdAssignment::from_vec(
        &g2,
        (0..2 * n)
            .map(|i| BitString::from_usize(i % n, width))
            .collect(),
    )
    .expect("one id per node");
    debug_assert!(id.is_locally_unique(&g, r_id));
    debug_assert!(id2.is_locally_unique(&g2, r_id));
    (g, id, g2, id2)
}

/// Runs an arbiter on both members of a fooling pair with the empty
/// certificate list and reports whether the verdicts coincide node-wise
/// (node `i` of `G'` compared against node `i mod n` of `G`) — which
/// Proposition 21 guarantees for every machine.
///
/// # Errors
///
/// Propagates execution errors.
pub fn verdicts_coincide_on_pair(
    arbiter: &Arbiter,
    pair: &(LabeledGraph, IdAssignment, LabeledGraph, IdAssignment),
    limits: &ExecLimits,
) -> Result<bool, MachineError> {
    let (g, id, g2, id2) = pair;
    let empty = CertificateList::new();
    let out1: LocalOutcome = arbiter.run(g, id, &empty, limits)?;
    let out2: LocalOutcome = arbiter.run(g2, id2, &empty, limits)?;
    let n = g.node_count();
    Ok((0..g2.node_count()).all(|i| out2.verdicts[i] == out1.verdicts[i % n]))
}

/// Checks the identifier-independence requirement of the hierarchy's
/// definition (Section 4): the game outcome on `(G, id)` must be the same
/// for every admissible identifier assignment. Returns the common outcome,
/// or `None` if two assignments disagree (i.e. the machine is *not* a
/// valid arbiter).
///
/// # Errors
///
/// Propagates game errors.
pub fn game_outcome_id_independent(
    arbiter: &Arbiter,
    g: &LabeledGraph,
    ids: &[IdAssignment],
    limits: &crate::GameLimits,
) -> Result<Option<bool>, crate::GameError> {
    let mut outcome: Option<bool> = None;
    for id in ids {
        let res = crate::decide_game(arbiter, g, id, limits)?;
        match outcome {
            None => outcome = Some(res.eve_wins),
            Some(prev) if prev != res.eve_wins => return Ok(None),
            _ => {}
        }
    }
    Ok(outcome)
}

/// A labeled cycle together with an identifier and certificate assignment,
/// as used in the proof of Proposition 23.
#[derive(Debug, Clone)]
pub struct CycleConfig {
    /// Node labels around the cycle.
    pub labels: Vec<BitString>,
    /// Identifiers around the cycle.
    pub ids: Vec<BitString>,
    /// Certificates around the cycle (a single Eve move).
    pub certs: Vec<BitString>,
}

impl CycleConfig {
    /// The number of nodes.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the configuration is empty (it never is for valid cycles).
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Materializes the cycle graph with its assignments.
    ///
    /// # Errors
    ///
    /// Returns an error if fewer than 3 nodes are configured.
    pub fn build(&self) -> Result<(LabeledGraph, IdAssignment, CertificateList), GraphError> {
        if self.len() < 3 {
            return Err(GraphError::EmptyGraph);
        }
        let g = lph_graphs::generators::labeled_cycle_bits(self.labels.clone());
        let id = IdAssignment::from_vec(&g, self.ids.clone())?;
        let k = CertificateAssignment::from_vec(&g, self.certs.clone())?;
        Ok((g, id, CertificateList::from_assignments(vec![k])))
    }

    /// The *view* of node `i` at radius `r`: the sequence of
    /// (label, id, certificate) triples of the nodes `i−r, …, i, …, i+r`
    /// around the cycle.
    pub fn view(&self, i: usize, r: usize) -> Vec<(BitString, BitString, BitString)> {
        let n = self.len();
        (0..=2 * r)
            .map(|k| {
                let j = (i + n + k - r) % n;
                (
                    self.labels[j].clone(),
                    self.ids[j].clone(),
                    self.certs[j].clone(),
                )
            })
            .collect()
    }

    /// Finds two distinct positions with identical radius-`r` views whose
    /// distance along the cycle exceeds `2r` (so the splice leaves a valid
    /// cycle), preferring pairs whose *surviving arc* (from the first to
    /// the second position going forward) avoids `avoid`.
    pub fn find_twin_views(&self, r: usize, avoid: usize) -> Option<(usize, usize)> {
        let n = self.len();
        for i in 0..n {
            for j in i + 1..n {
                let forward_gap = j - i;
                let backward_gap = n - forward_gap;
                if forward_gap <= 2 * r + 1 || backward_gap <= 2 * r + 1 {
                    continue;
                }
                // The surviving arc is i..=j (forward); it must avoid the
                // distinguished node.
                let avoided = !(i <= avoid && avoid <= j);
                if avoided && self.view(i, r) == self.view(j, r) {
                    return Some((i, j));
                }
            }
        }
        None
    }
}

/// Cut-and-splice (Proposition 23): given twin positions `i < j` with
/// identical radius-`r` views, keeps the arc `i..j` (identifying `i` with
/// `j`) and discards the rest. Every surviving node's radius-`r` view in
/// the new cycle equals its view in the old one.
///
/// # Panics
///
/// Panics if the surviving arc is shorter than 3 nodes.
pub fn splice_cycle(config: &CycleConfig, i: usize, j: usize) -> CycleConfig {
    assert!(i < j && j < config.len());
    let take = |v: &Vec<BitString>| -> Vec<BitString> { v[i..j].to_vec() };
    let out = CycleConfig {
        labels: take(&config.labels),
        ids: take(&config.ids),
        certs: take(&config.certs),
    };
    assert!(out.len() >= 3, "spliced cycle too short");
    out
}

/// Verifies the pumping invariant: every node of the spliced configuration
/// has the same radius-`r` view as the corresponding node of the original.
pub fn pump_views(original: &CycleConfig, spliced: &CycleConfig, i: usize, r: usize) -> bool {
    (0..spliced.len()).all(|k| spliced.view(k, r) == original.view(i + k, r))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbiters;
    use lph_machine::machines;

    #[test]
    fn fooling_pair_shapes() {
        let (g, id, g2, id2) = prop21_fooling_pair(7, 1);
        assert_eq!(g.node_count(), 7);
        assert_eq!(g2.node_count(), 14);
        assert!(id.is_locally_unique(&g, 1));
        assert!(id2.is_locally_unique(&g2, 1));
        // The duplicated ids are NOT globally unique on G'.
        assert!(!id2.is_locally_unique(&g2, 7));
    }

    #[test]
    fn every_machine_is_fooled_on_the_pair() {
        // Proposition 21's key invariant, checked on three very different
        // machines: verdicts coincide node-wise between C_n and C_2n.
        let pair = prop21_fooling_pair(7, 1);
        let lim = ExecLimits::default();
        for arb in [
            arbiters::all_selected_decider(),
            arbiters::eulerian_decider(),
            Arbiter::from_tm(
                "coloring",
                crate::GameSpec::sigma(0, 1, 1, lph_graphs::PolyBound::constant(0)),
                machines::proper_coloring_verifier(),
            ),
        ] {
            assert!(
                verdicts_coincide_on_pair(&arb, &pair, &lim).unwrap(),
                "machine {} distinguished the fooling pair",
                arb.name()
            );
        }
    }

    #[test]
    fn ground_truth_differs_on_the_pair() {
        // …while 2-colorability tells them apart: that is the separation.
        let (g, _, g2, _) = prop21_fooling_pair(11, 2);
        assert!(!lph_props::is_k_colorable(&g, 2));
        assert!(lph_props::is_k_colorable(&g2, 2));
    }

    #[test]
    fn game_outcomes_are_id_independent() {
        use crate::GameLimits;
        let g = lph_graphs::generators::cycle(5);
        let n = g.node_count();
        let ids: Vec<IdAssignment> = vec![
            IdAssignment::global(&g),
            IdAssignment::from_vec(
                &g,
                (0..n)
                    .map(|i| BitString::from_usize(n - 1 - i, 3))
                    .collect(),
            )
            .unwrap(),
            IdAssignment::small(&g, 1),
        ];
        let lim = GameLimits {
            cert_len_cap: Some(2),
            ..GameLimits::default()
        };
        let arb = crate::arbiters::three_colorable_verifier();
        let outcome = game_outcome_id_independent(&arb, &g, &ids, &lim).unwrap();
        assert_eq!(
            outcome,
            Some(true),
            "C5 is 3-colorable under every id assignment"
        );
    }

    fn pointer_config(n: usize, unselected: usize, m: usize) -> CycleConfig {
        // Labels: all 1 except `unselected`; ids cyclic with period m;
        // certificates: every selected node points "clockwise" (to the id
        // of its successor), the unselected one points nowhere.
        let width = 4;
        CycleConfig {
            labels: (0..n)
                .map(|i| BitString::from_bits01(if i == unselected { "0" } else { "1" }))
                .collect(),
            ids: (0..n)
                .map(|i| BitString::from_usize(i % m, width))
                .collect(),
            certs: (0..n)
                .map(|i| {
                    if i == unselected {
                        BitString::new()
                    } else {
                        BitString::from_usize((i + 1) % m, width)
                    }
                })
                .collect(),
        }
    }

    #[test]
    fn twin_views_exist_on_long_cycles() {
        // Period-5 ids and clockwise pointers repeat every 5 nodes, so a
        // cycle of length 25 has twin views far from the unselected node.
        let cfg = pointer_config(25, 0, 5);
        let (i, j) = cfg.find_twin_views(1, 0).expect("twins exist");
        assert_eq!(cfg.view(i, 1), cfg.view(j, 1));
        assert!(j - i > 3);
    }

    #[test]
    fn splice_preserves_views_and_fools_the_pointer_verifier() {
        let cfg = pointer_config(25, 0, 5);
        let (i, j) = cfg.find_twin_views(1, 0).expect("twins exist");
        let spliced = splice_cycle(&cfg, i, j);
        assert!(pump_views(&cfg, &spliced, i, 1), "views must be preserved");
        // The original is a genuine yes-instance accepted by the pointer
        // verifier under these certificates…
        let arb = arbiters::pointer_to_unselected_verifier();
        let (g, id, certs) = cfg.build().unwrap();
        assert!(arb
            .accepts(&g, &id, &certs, &ExecLimits::default())
            .unwrap());
        // …and the spliced all-selected cycle is still accepted: the
        // verifier is *fooled*, exhibiting NOT-ALL-SELECTED ∉ NLP.
        let (g2, id2, certs2) = spliced.build().unwrap();
        assert!(
            spliced
                .labels
                .iter()
                .all(|l| *l == BitString::from_bits01("1")),
            "the unselected node was spliced away"
        );
        assert!(arb
            .accepts(&g2, &id2, &certs2, &ExecLimits::default())
            .unwrap());
    }

    #[test]
    fn splice_requires_room() {
        let cfg = pointer_config(25, 0, 5);
        // Positions closer than 2r+1 are never returned as twins.
        assert!(cfg.find_twin_views(12, 0).is_none());
    }
}
