//! Certificate restrictors and the restrictive → permissive arbiter
//! conversion of Lemma 8 (Section 6).
//!
//! A *certificate restrictor* is a local-polynomial machine `M_i` that
//! filters the certificate assignments admissible as move `i`; it must be
//! *locally repairable*: whenever a node rejects a certificate assignment,
//! changing only that node's certificate can make it accept without
//! affecting any other node's verdict.
//!
//! [`decide_restricted_game`] solves games whose moves are filtered by
//! restrictors, and [`PermissiveArbiter`] implements the Lemma 8 proof's
//! conversion: the permissive machine simulates the restrictors, keeps an
//! `ok_i` flag per restrictor, and on a violated restriction returns the
//! verdict prescribed by the violated move's quantifier (reject for Eve's
//! moves, accept for Adam's). As in the proof, local repairability makes
//! the verdicts of violation-unaware nodes legitimate.

use lph_graphs::{CertificateAssignment, CertificateList, IdAssignment, LabeledGraph};
use lph_machine::{ExecLimits, MachineError};

use crate::arbiter::{Arbiter, Arbitrating};
use crate::class::Player;
use crate::game::{enumerate_certificates, GameError, GameLimits, GameResult, GameSpec};

/// A certificate restrictor: an arbiter-shaped machine judging whether the
/// *last* assignment of a certificate list is admissible given the previous
/// ones.
pub struct CertificateRestrictor {
    inner: Arbiter,
}

impl CertificateRestrictor {
    /// Wraps a machine as a restrictor.
    pub fn new(inner: Arbiter) -> Self {
        CertificateRestrictor { inner }
    }

    /// The trivial restrictor (accepts everything).
    pub fn trivial(spec: GameSpec) -> Self {
        use lph_machine::{LocalAlgorithm, NodeCtx, NodeInput, NodeProgram, RoundAction};
        struct Yes;
        impl LocalAlgorithm for Yes {
            fn spawn(&self, _input: NodeInput) -> Box<dyn NodeProgram> {
                Box::new(
                    |ctx: &mut NodeCtx, _r: usize, _i: &[lph_graphs::BitString]| {
                        ctx.charge(1);
                        RoundAction::accept()
                    },
                )
            }
        }
        CertificateRestrictor {
            inner: Arbiter::from_local("trivial restrictor", spec, Yes),
        }
    }

    /// The per-node verdicts on `(G, id, κ̄·κ)`.
    ///
    /// # Errors
    ///
    /// Propagates execution errors.
    pub fn verdicts(
        &self,
        g: &LabeledGraph,
        id: &IdAssignment,
        prefix: &CertificateList,
        candidate: &CertificateAssignment,
        limits: &ExecLimits,
    ) -> Result<Vec<bool>, MachineError> {
        let full = prefix.extended(candidate.clone());
        Ok(self.inner.run(g, id, &full, limits)?.verdicts)
    }

    /// Whether the candidate move is admitted (all nodes accept).
    ///
    /// # Errors
    ///
    /// Propagates execution errors.
    pub fn admits(
        &self,
        g: &LabeledGraph,
        id: &IdAssignment,
        prefix: &CertificateList,
        candidate: &CertificateAssignment,
        limits: &ExecLimits,
    ) -> Result<bool, MachineError> {
        Ok(self
            .verdicts(g, id, prefix, candidate, limits)?
            .iter()
            .all(|&v| v))
    }
}

/// Checks *local repairability* (Section 6) of a restrictor on a concrete
/// configuration: for every rejecting node `u`, some replacement of `u`'s
/// certificate alone (within the given length budget) makes `u` accept
/// while every other node's verdict is unchanged.
///
/// # Errors
///
/// Propagates execution errors.
pub fn check_local_repairability(
    restrictor: &CertificateRestrictor,
    g: &LabeledGraph,
    id: &IdAssignment,
    prefix: &CertificateList,
    candidate: &CertificateAssignment,
    budgets: &[usize],
    limits: &ExecLimits,
) -> Result<bool, MachineError> {
    let before = restrictor.verdicts(g, id, prefix, candidate, limits)?;
    for u in g.nodes() {
        if before[u.0] {
            continue;
        }
        let mut repaired = false;
        for alt in lph_graphs::enumerate::bitstrings_up_to(budgets[u.0]) {
            let fixed = candidate.with_cert(u, alt);
            let after = restrictor.verdicts(g, id, prefix, &fixed, limits)?;
            let others_same = g
                .nodes()
                .filter(|&v| v != u)
                .all(|v| after[v.0] == before[v.0]);
            if after[u.0] && others_same {
                repaired = true;
                break;
            }
        }
        if !repaired {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Solves a certificate game in which move `i` ranges only over assignments
/// admitted by `restrictors[i]` — the semantics of restrictive arbiters.
///
/// # Errors
///
/// Returns [`GameError`] under the same conditions as
/// [`crate::decide_game`].
///
/// # Panics
///
/// Panics if the number of restrictors differs from the arbiter's `ℓ`.
pub fn decide_restricted_game(
    arbiter: &Arbiter,
    restrictors: &[CertificateRestrictor],
    g: &LabeledGraph,
    id: &IdAssignment,
    limits: &GameLimits,
) -> Result<GameResult, GameError> {
    let spec = arbiter.spec().clone();
    assert_eq!(restrictors.len(), spec.ell, "one restrictor per move");
    if !id.is_locally_unique(g, spec.r_id) {
        return Err(GameError::IdsNotAdmissible { r_id: spec.r_id });
    }
    let mut runs: u64 = 0;

    #[allow(clippy::too_many_arguments)]
    fn go(
        arbiter: &Arbiter,
        restrictors: &[CertificateRestrictor],
        g: &LabeledGraph,
        id: &IdAssignment,
        prefix: &CertificateList,
        move_idx: usize,
        runs: &mut u64,
        limits: &GameLimits,
    ) -> Result<bool, GameError> {
        let spec = arbiter.spec();
        if move_idx == spec.ell {
            *runs += 1;
            if *runs > limits.max_runs {
                return Err(GameError::BudgetExceeded {
                    limit: limits.max_runs,
                });
            }
            return Ok(arbiter.accepts(g, id, prefix, &limits.exec)?);
        }
        let cap = match &limits.per_move_caps {
            Some(caps) if move_idx < caps.len() => Some(caps[move_idx]),
            _ => limits.cert_len_cap,
        };
        let budgets = spec.budgets(g, id, cap);
        let player = spec.player_of_move(move_idx);
        for k in enumerate_certificates(g, &budgets)? {
            *runs += 1;
            if *runs > limits.max_runs {
                return Err(GameError::BudgetExceeded {
                    limit: limits.max_runs,
                });
            }
            if !restrictors[move_idx].admits(g, id, prefix, &k, &limits.exec)? {
                continue;
            }
            let sub = go(
                arbiter,
                restrictors,
                g,
                id,
                &prefix.extended(k),
                move_idx + 1,
                runs,
                limits,
            )?;
            match player {
                Player::Eve if sub => return Ok(true),
                Player::Adam if !sub => return Ok(false),
                _ => {}
            }
        }
        Ok(player == Player::Adam)
    }

    let eve_wins = go(
        arbiter,
        restrictors,
        g,
        id,
        &CertificateList::new(),
        0,
        &mut runs,
        limits,
    )?;
    Ok(GameResult {
        eve_wins,
        runs,
        winning_first_move: None,
        refutation: None,
    })
}

/// The Lemma 8 conversion: wraps a restrictive arbiter and its restrictors
/// into a machine playable under **unrestricted** certificates.
///
/// On a certificate list `κ₁·…·κℓ`, it finds the first move `i` whose
/// restrictor rejects at some node; that node (and only code paths through
/// it) overrides its verdict with `reject` if move `i` belongs to Eve and
/// `accept` if it belongs to Adam; violation-unaware nodes keep the inner
/// arbiter's verdict, which local repairability legitimizes.
pub struct PermissiveArbiter {
    inner: Arbiter,
    restrictors: Vec<CertificateRestrictor>,
}

impl PermissiveArbiter {
    /// Builds the conversion.
    ///
    /// # Panics
    ///
    /// Panics if the number of restrictors differs from the inner arbiter's
    /// `ℓ`.
    pub fn new(inner: Arbiter, restrictors: Vec<CertificateRestrictor>) -> Self {
        assert_eq!(
            restrictors.len(),
            inner.spec().ell,
            "one restrictor per move"
        );
        PermissiveArbiter { inner, restrictors }
    }
}

impl Arbitrating for PermissiveArbiter {
    fn spec(&self) -> &GameSpec {
        self.inner.spec()
    }

    fn accepts(
        &self,
        g: &LabeledGraph,
        id: &IdAssignment,
        certs: &CertificateList,
        limits: &ExecLimits,
    ) -> Result<bool, MachineError> {
        let spec = self.inner.spec();
        // Per-node verdicts of the inner arbiter.
        let base = self.inner.run(g, id, certs, limits)?.verdicts;
        // For each node: the first violated restriction, if any.
        let mut first_violation: Vec<Option<usize>> = vec![None; g.node_count()];
        for i in 0..spec.ell {
            let prefix: CertificateList = certs.iter().take(i).cloned().collect();
            let Some(candidate) = certs.get(i) else { break };
            let v = self.restrictors[i].verdicts(g, id, &prefix, candidate, limits)?;
            for u in g.nodes() {
                if first_violation[u.0].is_none() && !v[u.0] {
                    first_violation[u.0] = Some(i);
                }
            }
        }
        let verdicts: Vec<bool> = g
            .nodes()
            .map(|u| match first_violation[u.0] {
                Some(i) => spec.player_of_move(i) == Player::Adam,
                None => base[u.0],
            })
            .collect();
        Ok(verdicts.iter().all(|&v| v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::game::decide_game;
    use lph_graphs::{generators, BitString, PolyBound};
    use lph_machine::{LocalAlgorithm, NodeCtx, NodeInput, NodeProgram, RoundAction};

    /// Restrictor demanding the last certificate be exactly one bit.
    fn one_bit_restrictor(spec: GameSpec) -> CertificateRestrictor {
        struct R;
        impl LocalAlgorithm for R {
            fn spawn(&self, input: NodeInput) -> Box<dyn NodeProgram> {
                let ok = input.certificates.last().map(BitString::len) == Some(1);
                Box::new(move |ctx: &mut NodeCtx, _r: usize, _i: &[BitString]| {
                    ctx.charge(1);
                    RoundAction::verdict(ok)
                })
            }
        }
        CertificateRestrictor::new(Arbiter::from_local("one-bit", spec, R))
    }

    /// Arbiter: accepts iff the (single) certificate bit equals the label
    /// bit — but *any* certificate longer than 1 bit counts as accept,
    /// which without restriction would let Eve cheat.
    fn cheatable_arbiter() -> Arbiter {
        struct A;
        impl LocalAlgorithm for A {
            fn spawn(&self, input: NodeInput) -> Box<dyn NodeProgram> {
                let cert = input.certificates.first().cloned().unwrap_or_default();
                let ok = cert.len() > 1 || cert == input.label;
                Box::new(move |ctx: &mut NodeCtx, _r: usize, _i: &[BitString]| {
                    ctx.charge(1);
                    RoundAction::verdict(ok)
                })
            }
        }
        Arbiter::from_local(
            "cheatable",
            GameSpec::sigma(1, 1, 1, PolyBound::linear(0, 1)),
            A,
        )
    }

    #[test]
    fn restriction_changes_the_decided_property() {
        let g = generators::labeled_path(&["1", "00"]); // label "00" ≠ any 1-bit cert
        let id = IdAssignment::global(&g);
        let lim = GameLimits {
            cert_len_cap: Some(2),
            ..GameLimits::default()
        };
        // Unrestricted: Eve cheats with 2-bit certificates.
        let arb = cheatable_arbiter();
        assert!(decide_game(&arb, &g, &id, &lim).unwrap().eve_wins);
        // Restricted to 1-bit certificates: no certificate matches "00".
        let restr = vec![one_bit_restrictor(arb.spec().clone())];
        assert!(
            !decide_restricted_game(&arb, &restr, &g, &id, &lim)
                .unwrap()
                .eve_wins
        );
    }

    #[test]
    fn trivial_restrictor_changes_nothing() {
        let g = generators::labeled_path(&["1", "0"]);
        let id = IdAssignment::global(&g);
        let lim = GameLimits {
            cert_len_cap: Some(2),
            ..GameLimits::default()
        };
        let arb = cheatable_arbiter();
        let free = decide_game(&arb, &g, &id, &lim).unwrap().eve_wins;
        let restr = vec![CertificateRestrictor::trivial(arb.spec().clone())];
        let restricted = decide_restricted_game(&arb, &restr, &g, &id, &lim)
            .unwrap()
            .eve_wins;
        assert_eq!(free, restricted);
    }

    #[test]
    fn one_bit_restrictor_is_locally_repairable() {
        let g = generators::path(3);
        let id = IdAssignment::global(&g);
        let spec = GameSpec::sigma(1, 1, 1, PolyBound::linear(0, 1));
        let restr = one_bit_restrictor(spec);
        // A candidate with one bad certificate (empty) at node 1.
        let candidate = CertificateAssignment::from_vec(
            &g,
            vec![
                BitString::from_bits01("0"),
                BitString::new(),
                BitString::from_bits01("1"),
            ],
        )
        .unwrap();
        let ok = check_local_repairability(
            &restr,
            &g,
            &id,
            &CertificateList::new(),
            &candidate,
            &[2, 2, 2],
            &ExecLimits::default(),
        )
        .unwrap();
        assert!(ok, "the empty certificate can be repaired to a 1-bit one");
    }

    #[test]
    fn global_restrictor_is_not_locally_repairable() {
        // A restrictor demanding that *some other* node has certificate
        // length 1 cannot be repaired locally at the rejecting node: the
        // rejecting node's verdict depends on its neighbor's certificate.
        struct R;
        impl LocalAlgorithm for R {
            fn spawn(&self, input: NodeInput) -> Box<dyn NodeProgram> {
                let mine = input.certificates.last().cloned().unwrap_or_default();
                Box::new(
                    move |ctx: &mut NodeCtx, round: usize, inbox: &[BitString]| {
                        ctx.charge(1);
                        match round {
                            1 => RoundAction::Send(vec![mine.clone(); inbox.len()]),
                            _ => RoundAction::verdict(inbox.iter().all(|m| m.len() == 1)),
                        }
                    },
                )
            }
        }
        let spec = GameSpec::sigma(1, 1, 1, PolyBound::linear(0, 1));
        let restr = CertificateRestrictor::new(Arbiter::from_local("nbr", spec, R));
        let g = generators::path(2);
        let id = IdAssignment::global(&g);
        let candidate = CertificateAssignment::from_vec(
            &g,
            vec![BitString::new(), BitString::from_bits01("1")],
        )
        .unwrap();
        // Node 1 rejects (its neighbor's certificate is empty), and no
        // change of node 1's own certificate can fix that.
        let ok = check_local_repairability(
            &restr,
            &g,
            &id,
            &CertificateList::new(),
            &candidate,
            &[2, 2],
            &ExecLimits::default(),
        )
        .unwrap();
        assert!(!ok);
    }

    #[test]
    fn lemma8_wrapper_agrees_with_the_restricted_game() {
        // The permissive wrapper of (cheatable arbiter + one-bit
        // restrictor) must decide the same property as the restricted game.
        let lim = GameLimits {
            cert_len_cap: Some(2),
            ..GameLimits::default()
        };
        for labels in [["1", "0"], ["1", "00"], ["0", "11"]] {
            let g = generators::labeled_path(&labels);
            let id = IdAssignment::global(&g);
            let arb = cheatable_arbiter();
            let restr = vec![one_bit_restrictor(arb.spec().clone())];
            let restricted = decide_restricted_game(&arb, &restr, &g, &id, &lim)
                .unwrap()
                .eve_wins;
            let arb2 = cheatable_arbiter();
            let wrapper = PermissiveArbiter::new(
                arb2,
                vec![one_bit_restrictor(cheatable_arbiter().spec().clone())],
            );
            let permissive = decide_game(&wrapper, &g, &id, &lim).unwrap().eve_wins;
            assert_eq!(restricted, permissive, "labels {labels:?}");
        }
    }
}
