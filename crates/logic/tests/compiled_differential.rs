//! Differential suite pinning the plan compiler to the interpreter: over
//! the crate's example sentences and a seeded family of random sentences,
//! `CompiledSentence::check*` must return exactly what `Sentence::check*`
//! returns — the same verdict or the same `CheckError` (budget exhaustion
//! at the identical matrix-evaluation count, tuple limits with identical
//! reported sizes).

use lph_graphs::generators::{self, XorShift};
use lph_graphs::GraphStructure;
use lph_logic::check::{CheckError, CheckOptions};
use lph_logic::dsl::*;
use lph_logic::{
    examples, CompiledSentence, EvalBackend, FoVar, Formula, Matrix, Quantifier, Sentence, SoBlock,
    SoQuant, SoVar,
};

fn probe_family() -> Vec<GraphStructure> {
    [
        generators::labeled_cycle(&["1", "1", "1"]),
        generators::labeled_path(&["1", "0"]),
        generators::labeled_cycle(&["1", "0", "1", "1"]),
        generators::star(3),
        generators::labeled_path(&["0", "1", "1"]),
    ]
    .iter()
    .map(GraphStructure::of)
    .collect()
}

fn assert_equivalent(phi: &Sentence, compiled: &CompiledSentence, opts: &CheckOptions) {
    for gs in &probe_family() {
        let interp = phi.check_on_graph(gs, opts);
        let fast = compiled.check_on_graph(gs, opts);
        assert_eq!(interp, fast, "backends disagree on {phi} (opts {opts:?})");
    }
}

#[test]
fn example_sentences_agree() {
    for phi in [
        examples::all_selected(),
        examples::three_colorable(),
        examples::k_colorable(2),
        examples::not_all_selected(),
    ] {
        let compiled = CompiledSentence::compile(&phi);
        assert_equivalent(&phi, &compiled, &CheckOptions::default());
    }
}

#[test]
fn example_sentences_agree_under_tight_budgets() {
    // Budget parity is the sharpest equivalence signal: both engines must
    // count the same number of matrix evaluations in the same order, so a
    // budget of k errors out (or not) identically.
    for phi in [
        examples::all_selected(),
        examples::three_colorable(),
        examples::not_all_selected(),
    ] {
        let compiled = CompiledSentence::compile(&phi);
        for budget in [1, 2, 7, 50, 1000] {
            let opts = CheckOptions {
                max_matrix_evals: budget,
                max_tuples_per_var: 22,
            };
            assert_equivalent(&phi, &compiled, &opts);
        }
    }
}

#[test]
fn tuple_limit_errors_agree() {
    for phi in [examples::three_colorable(), examples::not_all_selected()] {
        let compiled = CompiledSentence::compile(&phi);
        let opts = CheckOptions {
            max_matrix_evals: 5_000_000,
            max_tuples_per_var: 2,
        };
        let mut tripped = 0usize;
        for gs in &probe_family() {
            let interp = phi.check_on_graph(gs, &opts);
            let fast = compiled.check_on_graph(gs, &opts);
            assert_eq!(interp, fast);
            if matches!(interp, Err(CheckError::TooManyTuples { .. })) {
                tripped += 1;
            }
        }
        // 2-node probes fit a universe of 2 tuples; the larger ones must
        // actually exercise the error path.
        assert!(tripped >= 3, "only {tripped} probes hit the tuple limit");
    }
}

struct SentenceGen {
    rng: XorShift,
    next_fo: u32,
}

impl SentenceGen {
    /// A random BF formula whose free first-order variables are drawn from
    /// `scope` and whose second-order atoms use `so_vars` (all unary).
    fn formula(&mut self, scope: &mut Vec<FoVar>, so_vars: &[SoVar], depth: usize) -> Formula {
        let pick = |rng: &mut XorShift, s: &[FoVar]| s[rng.below(s.len())];
        if depth == 0 {
            return match self.rng.below(6) {
                0 => Formula::True,
                1 => Formula::False,
                2 => unary(0, pick(&mut self.rng, scope)),
                3 => eq(pick(&mut self.rng, scope), pick(&mut self.rng, scope)),
                4 if !so_vars.is_empty() => {
                    let r = so_vars[self.rng.below(so_vars.len())];
                    app(r, vec![pick(&mut self.rng, scope)])
                }
                _ => edge(0, pick(&mut self.rng, scope), pick(&mut self.rng, scope)),
            };
        }
        match self.rng.below(9) {
            0 => not(self.formula(scope, so_vars, depth - 1)),
            1 => and(vec![
                self.formula(scope, so_vars, depth - 1),
                self.formula(scope, so_vars, depth - 1),
            ]),
            2 => or(vec![
                self.formula(scope, so_vars, depth - 1),
                self.formula(scope, so_vars, depth - 1),
            ]),
            3 => implies(
                self.formula(scope, so_vars, depth - 1),
                self.formula(scope, so_vars, depth - 1),
            ),
            4 => iff(
                self.formula(scope, so_vars, depth - 1),
                self.formula(scope, so_vars, depth - 1),
            ),
            k => {
                let anchor = pick(&mut self.rng, scope);
                let x = FoVar(self.next_fo);
                self.next_fo += 1;
                scope.push(x);
                let body = self.formula(scope, so_vars, depth - 1);
                scope.pop();
                match k {
                    5 => exists_adj(x, anchor, body),
                    6 => forall_adj(x, anchor, body),
                    7 => exists_near(x, anchor, self.rng.below(3), body),
                    _ => forall_near(x, anchor, self.rng.below(3), body),
                }
            }
        }
    }

    fn sentence(&mut self) -> Sentence {
        self.next_fo = 1;
        let so_count = self.rng.below(3);
        let so_vars: Vec<SoVar> = (0..so_count as u32).map(SoVar::set).collect();
        let blocks: Vec<SoBlock> = so_vars
            .iter()
            .map(|&v| SoBlock {
                quantifier: if self.rng.bool() {
                    Quantifier::Exists
                } else {
                    Quantifier::Forall
                },
                vars: vec![if self.rng.bool() {
                    SoQuant::nodes(v)
                } else {
                    SoQuant::all(v)
                }],
            })
            .collect();
        let x = FoVar(0);
        let mut scope = vec![x];
        let depth = 1 + self.rng.below(3);
        let body = self.formula(&mut scope, &so_vars, depth);
        Sentence::new(blocks, Matrix::Lfo { x, body })
    }
}

#[test]
fn seeded_random_sentences_agree() {
    let mut g = SentenceGen {
        rng: XorShift::new(0x9147),
        next_fo: 1,
    };
    // Small structures keep ∀-universes cheap; `All`-support set variables
    // over them stay within the default tuple cap only sometimes — both
    // verdicts and TooManyTuples/Budget errors count as agreement.
    let opts = [
        CheckOptions::default(),
        CheckOptions {
            max_matrix_evals: 3,
            max_tuples_per_var: 22,
        },
        CheckOptions {
            max_matrix_evals: 5_000_000,
            max_tuples_per_var: 6,
        },
    ];
    for _ in 0..60 {
        let phi = g.sentence();
        let compiled = CompiledSentence::compile(&phi);
        for o in &opts {
            assert_equivalent(&phi, &compiled, o);
        }
    }
}

#[test]
fn auto_routing_is_deterministic() {
    // `Auto` must resolve identically across repeated calls — it depends
    // only on the sentence, so this holds regardless of thread settings
    // (the LPH_THREADS=1 variant is pinned in tests/backend_equivalence.rs
    // at the workspace root, where the runtime crate is in scope).
    for phi in [
        examples::all_selected(),
        examples::three_colorable(),
        examples::not_all_selected(),
    ] {
        let first = EvalBackend::Auto.resolve(&phi);
        for _ in 0..10 {
            assert_eq!(EvalBackend::Auto.resolve(&phi), first);
        }
        assert_ne!(first, EvalBackend::Auto, "resolve must pick an engine");
    }
}
