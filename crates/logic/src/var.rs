use std::collections::BTreeSet;
use std::fmt;

use lph_graphs::ElemId;

/// A first-order variable (an element of `V_FO`), identified by index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FoVar(pub u32);

impl fmt::Display for FoVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A second-order (relation) variable of a fixed arity (an element of
/// `V_SO(k)`). Variables with different arities are distinct even if their
/// indices coincide, matching `V_SO(k) ∩ V_SO(k') = ∅`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SoVar {
    /// The variable's index.
    pub index: u32,
    /// The arity `k ≥ 1`.
    pub arity: u8,
}

impl SoVar {
    /// A unary (set) variable.
    pub fn set(index: u32) -> Self {
        SoVar { index, arity: 1 }
    }

    /// A binary relation variable.
    pub fn binary(index: u32) -> Self {
        SoVar { index, arity: 2 }
    }
}

impl fmt::Display for SoVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}^{}", self.index, self.arity)
    }
}

/// A fresh-variable supply used when expanding derived forms.
#[derive(Debug, Default)]
pub struct VarPool {
    next_fo: u32,
    next_so: u32,
}

impl VarPool {
    /// A pool handing out variables starting from the given indices (choose
    /// them above any manually assigned variables).
    pub fn starting_at(fo: u32, so: u32) -> Self {
        VarPool {
            next_fo: fo,
            next_so: so,
        }
    }

    /// A fresh first-order variable.
    pub fn fo(&mut self) -> FoVar {
        let v = FoVar(self.next_fo);
        self.next_fo += 1;
        v
    }

    /// A fresh second-order variable of the given arity.
    pub fn so(&mut self, arity: u8) -> SoVar {
        let v = SoVar {
            index: self.next_so,
            arity,
        };
        self.next_so += 1;
        v
    }
}

/// A finite relation over a structure's domain: the interpretation of a
/// second-order variable.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Relation {
    arity: usize,
    tuples: BTreeSet<Vec<ElemId>>,
}

impl Relation {
    /// The empty relation of the given arity.
    pub fn empty(arity: usize) -> Self {
        Relation {
            arity,
            tuples: BTreeSet::new(),
        }
    }

    /// Builds a relation from tuples.
    ///
    /// # Panics
    ///
    /// Panics if any tuple's length differs from `arity`.
    pub fn from_tuples<I: IntoIterator<Item = Vec<ElemId>>>(arity: usize, tuples: I) -> Self {
        let tuples: BTreeSet<Vec<ElemId>> = tuples.into_iter().collect();
        assert!(
            tuples.iter().all(|t| t.len() == arity),
            "all tuples must have length {arity}"
        );
        Relation { arity, tuples }
    }

    /// A unary relation from a set of elements.
    pub fn from_set<I: IntoIterator<Item = ElemId>>(elems: I) -> Self {
        Relation {
            arity: 1,
            tuples: elems.into_iter().map(|e| vec![e]).collect(),
        }
    }

    /// The arity.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Whether the tuple belongs to the relation.
    pub fn contains(&self, tuple: &[ElemId]) -> bool {
        debug_assert_eq!(tuple.len(), self.arity);
        self.tuples.contains(tuple)
    }

    /// Inserts a tuple.
    ///
    /// # Panics
    ///
    /// Panics if the tuple's length differs from the arity.
    pub fn insert(&mut self, tuple: Vec<ElemId>) {
        assert_eq!(tuple.len(), self.arity);
        self.tuples.insert(tuple);
    }

    /// The number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Iterates over the tuples.
    pub fn iter(&self) -> impl Iterator<Item = &Vec<ElemId>> {
        self.tuples.iter()
    }
}

/// A variable assignment `σ`, mapping first-order variables to elements and
/// second-order variables to relations.
#[derive(Debug, Clone, Default)]
pub struct Assignment {
    fo: Vec<(FoVar, ElemId)>,
    so: Vec<(SoVar, Relation)>,
}

impl Assignment {
    /// The empty assignment.
    pub fn new() -> Self {
        Assignment::default()
    }

    /// The element assigned to `x`, if any.
    pub fn elem(&self, x: FoVar) -> Option<ElemId> {
        self.fo.iter().rev().find(|(v, _)| *v == x).map(|&(_, e)| e)
    }

    /// The relation assigned to `r`, if any.
    pub fn relation(&self, r: SoVar) -> Option<&Relation> {
        self.so
            .iter()
            .rev()
            .find(|(v, _)| *v == r)
            .map(|(_, rel)| rel)
    }

    /// Pushes a first-order binding (`σ[x ↦ a]`); pop with
    /// [`Assignment::pop_fo`].
    pub fn push_fo(&mut self, x: FoVar, a: ElemId) {
        self.fo.push((x, a));
    }

    /// Removes the most recent first-order binding.
    pub fn pop_fo(&mut self) {
        self.fo.pop();
    }

    /// Pushes a second-order binding (`σ[R ↦ A]`).
    pub fn push_so(&mut self, r: SoVar, rel: Relation) {
        self.so.push((r, rel));
    }

    /// Removes the most recent second-order binding.
    pub fn pop_so(&mut self) {
        self.so.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn so_vars_distinguish_arities() {
        assert_ne!(SoVar::set(0), SoVar::binary(0));
    }

    #[test]
    fn pool_hands_out_distinct_vars() {
        let mut p = VarPool::starting_at(10, 5);
        assert_eq!(p.fo(), FoVar(10));
        assert_eq!(p.fo(), FoVar(11));
        assert_eq!(p.so(2), SoVar { index: 5, arity: 2 });
        assert_eq!(p.so(1), SoVar { index: 6, arity: 1 });
    }

    #[test]
    fn relation_membership() {
        let mut r = Relation::empty(2);
        r.insert(vec![ElemId(0), ElemId(1)]);
        assert!(r.contains(&[ElemId(0), ElemId(1)]));
        assert!(!r.contains(&[ElemId(1), ElemId(0)]));
        assert_eq!(r.len(), 1);
    }

    #[test]
    #[should_panic(expected = "length")]
    fn relation_rejects_wrong_arity() {
        let _ = Relation::from_tuples(2, vec![vec![ElemId(0)]]);
    }

    #[test]
    fn assignment_shadowing_is_lifo() {
        let mut s = Assignment::new();
        let x = FoVar(0);
        s.push_fo(x, ElemId(1));
        s.push_fo(x, ElemId(2));
        assert_eq!(s.elem(x), Some(ElemId(2)));
        s.pop_fo();
        assert_eq!(s.elem(x), Some(ElemId(1)));
        s.pop_fo();
        assert_eq!(s.elem(x), None);
    }

    #[test]
    fn from_set_builds_unary() {
        let r = Relation::from_set([ElemId(2), ElemId(0)]);
        assert_eq!(r.arity(), 1);
        assert!(r.contains(&[ElemId(0)]));
        assert!(!r.contains(&[ElemId(1)]));
    }
}
