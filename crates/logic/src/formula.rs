use std::collections::BTreeSet;
use std::fmt;

use lph_graphs::{ElemId, Structure};

use crate::var::{Assignment, FoVar, SoVar};

/// A logical formula over structures, covering lines 1–8 of Table 1 plus the
/// standard derived connectives and the `∃x ⇌≤r y` shorthand as first-class
/// nodes (second-order quantification lives in [`crate::Sentence`]
/// prefixes).
///
/// The *bounded fragment* `BF` consists of the formulas with no unbounded
/// quantifier ([`Formula::is_bf`]); `FO` additionally allows `∃x φ`/`∀x φ`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Formula {
    /// The truth constant `⊤`.
    True,
    /// The truth constant `⊥`.
    False,
    /// `⊙_{rel+1} x` — membership in a unary relation of the structure.
    Unary {
        /// 0-based index of the unary relation.
        rel: usize,
        /// The element variable.
        x: FoVar,
    },
    /// `x ⇀_{rel+1} y` — a binary relation of the structure.
    Edge {
        /// 0-based index of the binary relation.
        rel: usize,
        /// Source variable.
        x: FoVar,
        /// Target variable.
        y: FoVar,
    },
    /// `x ≐ y`.
    Eq(FoVar, FoVar),
    /// `R(x₁, …, x_k)` — an atom over a second-order variable.
    App {
        /// The relation variable.
        rel: SoVar,
        /// The argument variables (length = arity).
        args: Vec<FoVar>,
    },
    /// `¬φ`.
    Not(Box<Formula>),
    /// `φ₁ ∧ … ∧ φ_n` (empty conjunction is `⊤`).
    And(Vec<Formula>),
    /// `φ₁ ∨ … ∨ φ_n` (empty disjunction is `⊥`).
    Or(Vec<Formula>),
    /// `φ₁ → φ₂`.
    Implies(Box<Formula>, Box<Formula>),
    /// `φ₁ ↔ φ₂`.
    Iff(Box<Formula>, Box<Formula>),
    /// Unbounded `∃x φ` (line 7) — **not** in the bounded fragment.
    Exists {
        /// The bound variable.
        x: FoVar,
        /// The body.
        body: Box<Formula>,
    },
    /// Unbounded `∀x φ` — not in the bounded fragment.
    Forall {
        /// The bound variable.
        x: FoVar,
        /// The body.
        body: Box<Formula>,
    },
    /// Bounded `∃x ⇌ y φ` — Table 1 line 8 verbatim: there is an element
    /// `x` *connected to* `y` (related by some binary relation or its
    /// inverse; the anchor itself is **not** included unless it has a
    /// self-loop) such that `φ` holds.
    ExistsAdj {
        /// The bound variable (must differ from `anchor`).
        x: FoVar,
        /// The anchor variable `y`, free in this formula.
        anchor: FoVar,
        /// The body.
        body: Box<Formula>,
    },
    /// Bounded `∀x ⇌ y φ`, i.e. `¬∃x ⇌ y ¬φ`.
    ForallAdj {
        /// The bound variable (must differ from `anchor`).
        x: FoVar,
        /// The anchor variable `y`, free in this formula.
        anchor: FoVar,
        /// The body.
        body: Box<Formula>,
    },
    /// Bounded `∃x ⇌≤r y φ` (the Section 5.1 shorthand; **includes** the
    /// anchor at distance 0): there is an element `x` at Gaifman distance at most
    /// `radius` from `y` satisfying `φ`. `radius = 0` forces `x = y`.
    ExistsNear {
        /// The bound variable (must differ from `anchor`).
        x: FoVar,
        /// The anchor variable `y`, free in this formula.
        anchor: FoVar,
        /// The distance bound `r`.
        radius: usize,
        /// The body.
        body: Box<Formula>,
    },
    /// Bounded `∀x ⇌≤r y φ`, i.e. `¬∃x ⇌≤r y ¬φ`.
    ForallNear {
        /// The bound variable (must differ from `anchor`).
        x: FoVar,
        /// The anchor variable `y`, free in this formula.
        anchor: FoVar,
        /// The distance bound `r`.
        radius: usize,
        /// The body.
        body: Box<Formula>,
    },
}

impl Formula {
    /// The set of free first-order variables, per Table 1.
    pub fn free_fo(&self) -> BTreeSet<FoVar> {
        let mut out = BTreeSet::new();
        self.collect_free_fo(&mut out);
        out
    }

    fn collect_free_fo(&self, out: &mut BTreeSet<FoVar>) {
        match self {
            Formula::True | Formula::False => {}
            Formula::Unary { x, .. } => {
                out.insert(*x);
            }
            Formula::Edge { x, y, .. } | Formula::Eq(x, y) => {
                out.insert(*x);
                out.insert(*y);
            }
            Formula::App { args, .. } => out.extend(args.iter().copied()),
            Formula::Not(f) => f.collect_free_fo(out),
            Formula::And(fs) | Formula::Or(fs) => {
                for f in fs {
                    f.collect_free_fo(out);
                }
            }
            Formula::Implies(a, b) | Formula::Iff(a, b) => {
                a.collect_free_fo(out);
                b.collect_free_fo(out);
            }
            Formula::Exists { x, body } | Formula::Forall { x, body } => {
                let mut inner = BTreeSet::new();
                body.collect_free_fo(&mut inner);
                inner.remove(x);
                out.extend(inner);
            }
            Formula::ExistsAdj { x, anchor, body }
            | Formula::ForallAdj { x, anchor, body }
            | Formula::ExistsNear {
                x, anchor, body, ..
            }
            | Formula::ForallNear {
                x, anchor, body, ..
            } => {
                let mut inner = BTreeSet::new();
                body.collect_free_fo(&mut inner);
                inner.remove(x);
                out.extend(inner);
                out.insert(*anchor);
            }
        }
    }

    /// The set of second-order variables occurring (they are always free in
    /// a [`Formula`]; binding happens in [`crate::Sentence`] prefixes).
    pub fn so_vars(&self) -> BTreeSet<SoVar> {
        let mut out = BTreeSet::new();
        self.collect_so(&mut out);
        out
    }

    fn collect_so(&self, out: &mut BTreeSet<SoVar>) {
        match self {
            Formula::True
            | Formula::False
            | Formula::Unary { .. }
            | Formula::Edge { .. }
            | Formula::Eq(..) => {}
            Formula::App { rel, .. } => {
                out.insert(*rel);
            }
            Formula::Not(f) => f.collect_so(out),
            Formula::And(fs) | Formula::Or(fs) => {
                for f in fs {
                    f.collect_so(out);
                }
            }
            Formula::Implies(a, b) | Formula::Iff(a, b) => {
                a.collect_so(out);
                b.collect_so(out);
            }
            Formula::Exists { body, .. }
            | Formula::Forall { body, .. }
            | Formula::ExistsAdj { body, .. }
            | Formula::ForallAdj { body, .. }
            | Formula::ExistsNear { body, .. }
            | Formula::ForallNear { body, .. } => body.collect_so(out),
        }
    }

    /// Whether the formula belongs to the bounded fragment `BF`: no
    /// unbounded first-order quantifier anywhere.
    pub fn is_bf(&self) -> bool {
        match self {
            Formula::Exists { .. } | Formula::Forall { .. } => false,
            Formula::True
            | Formula::False
            | Formula::Unary { .. }
            | Formula::Edge { .. }
            | Formula::Eq(..)
            | Formula::App { .. } => true,
            Formula::Not(f) => f.is_bf(),
            Formula::And(fs) | Formula::Or(fs) => fs.iter().all(Formula::is_bf),
            Formula::Implies(a, b) | Formula::Iff(a, b) => a.is_bf() && b.is_bf(),
            Formula::ExistsAdj { body, .. }
            | Formula::ForallAdj { body, .. }
            | Formula::ExistsNear { body, .. }
            | Formula::ForallNear { body, .. } => body.is_bf(),
        }
    }

    /// The maximum nesting depth of bounded quantifiers, counting a
    /// `⇌≤r` quantifier as depth `r` — intuitively, the distance up to
    /// which the formula can "see" from its free variables (used as the
    /// radius of the arbiters compiled from formulas in Theorem 12).
    pub fn bounded_depth(&self) -> usize {
        match self {
            Formula::True
            | Formula::False
            | Formula::Unary { .. }
            | Formula::Edge { .. }
            | Formula::Eq(..)
            | Formula::App { .. } => 0,
            Formula::Not(f) => f.bounded_depth(),
            Formula::And(fs) | Formula::Or(fs) => {
                fs.iter().map(Formula::bounded_depth).max().unwrap_or(0)
            }
            Formula::Implies(a, b) | Formula::Iff(a, b) => a.bounded_depth().max(b.bounded_depth()),
            Formula::Exists { body, .. } | Formula::Forall { body, .. } => body.bounded_depth(),
            Formula::ExistsAdj { body, .. } | Formula::ForallAdj { body, .. } => {
                1 + body.bounded_depth()
            }
            Formula::ExistsNear { radius, body, .. } | Formula::ForallNear { radius, body, .. } => {
                radius + body.bounded_depth()
            }
        }
    }

    /// The number of AST nodes — the size measure used when discussing the
    /// polynomial growth of translated formulas (Theorem 19).
    pub fn node_count(&self) -> usize {
        1 + match self {
            Formula::True
            | Formula::False
            | Formula::Unary { .. }
            | Formula::Edge { .. }
            | Formula::Eq(..)
            | Formula::App { .. } => 0,
            Formula::Not(f) => f.node_count(),
            Formula::And(fs) | Formula::Or(fs) => fs.iter().map(Formula::node_count).sum(),
            Formula::Implies(a, b) | Formula::Iff(a, b) => a.node_count() + b.node_count(),
            Formula::Exists { body, .. }
            | Formula::Forall { body, .. }
            | Formula::ExistsAdj { body, .. }
            | Formula::ForallAdj { body, .. }
            | Formula::ExistsNear { body, .. }
            | Formula::ForallNear { body, .. } => body.node_count(),
        }
    }

    /// Evaluates the formula on a structure under an assignment covering all
    /// free variables (Table 1 semantics).
    ///
    /// # Panics
    ///
    /// Panics if a free variable is unassigned or an atom refers to a
    /// relation index outside the structure's signature.
    pub fn eval(&self, s: &Structure, sigma: &mut Assignment) -> bool {
        match self {
            Formula::True => true,
            Formula::False => false,
            Formula::Unary { rel, x } => {
                s.in_unary(*rel, sigma.elem(*x).expect("unassigned variable"))
            }
            Formula::Edge { rel, x, y } => s.related(
                *rel,
                sigma.elem(*x).expect("unassigned variable"),
                sigma.elem(*y).expect("unassigned variable"),
            ),
            Formula::Eq(x, y) => {
                sigma.elem(*x).expect("unassigned variable")
                    == sigma.elem(*y).expect("unassigned variable")
            }
            Formula::App { rel, args } => {
                let tuple: Vec<ElemId> = args
                    .iter()
                    .map(|a| sigma.elem(*a).expect("unassigned variable"))
                    .collect();
                sigma
                    .relation(*rel)
                    .expect("unassigned relation variable")
                    .contains(&tuple)
            }
            Formula::Not(f) => !f.eval(s, sigma),
            Formula::And(fs) => fs.iter().all(|f| f.eval(s, sigma)),
            Formula::Or(fs) => fs.iter().any(|f| f.eval(s, sigma)),
            Formula::Implies(a, b) => !a.eval(s, sigma) || b.eval(s, sigma),
            Formula::Iff(a, b) => a.eval(s, sigma) == b.eval(s, sigma),
            Formula::Exists { x, body } => s.elements().any(|a| {
                sigma.push_fo(*x, a);
                let v = body.eval(s, sigma);
                sigma.pop_fo();
                v
            }),
            Formula::Forall { x, body } => s.elements().all(|a| {
                sigma.push_fo(*x, a);
                let v = body.eval(s, sigma);
                sigma.pop_fo();
                v
            }),
            Formula::ExistsAdj { x, anchor, body } => {
                let base = sigma.elem(*anchor).expect("unassigned anchor");
                s.gaifman_neighbors(base).iter().copied().any(|a| {
                    sigma.push_fo(*x, a);
                    let v = body.eval(s, sigma);
                    sigma.pop_fo();
                    v
                })
            }
            Formula::ForallAdj { x, anchor, body } => {
                let base = sigma.elem(*anchor).expect("unassigned anchor");
                s.gaifman_neighbors(base).iter().copied().all(|a| {
                    sigma.push_fo(*x, a);
                    let v = body.eval(s, sigma);
                    sigma.pop_fo();
                    v
                })
            }
            Formula::ExistsNear {
                x,
                anchor,
                radius,
                body,
            } => {
                let base = sigma.elem(*anchor).expect("unassigned anchor");
                s.gaifman_ball(base, *radius).into_iter().any(|a| {
                    sigma.push_fo(*x, a);
                    let v = body.eval(s, sigma);
                    sigma.pop_fo();
                    v
                })
            }
            Formula::ForallNear {
                x,
                anchor,
                radius,
                body,
            } => {
                let base = sigma.elem(*anchor).expect("unassigned anchor");
                s.gaifman_ball(base, *radius).into_iter().all(|a| {
                    sigma.push_fo(*x, a);
                    let v = body.eval(s, sigma);
                    sigma.pop_fo();
                    v
                })
            }
        }
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Formula::True => write!(f, "⊤"),
            Formula::False => write!(f, "⊥"),
            Formula::Unary { rel, x } => write!(f, "⊙{}({x})", rel + 1),
            Formula::Edge { rel, x, y } => write!(f, "{x} ⇀{} {y}", rel + 1),
            Formula::Eq(x, y) => write!(f, "{x} ≐ {y}"),
            Formula::App { rel, args } => {
                write!(f, "{rel}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Formula::Not(g) => write!(f, "¬{g}"),
            Formula::And(fs) => {
                write!(f, "(")?;
                for (i, g) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∧ ")?;
                    }
                    write!(f, "{g}")?;
                }
                write!(f, ")")
            }
            Formula::Or(fs) => {
                write!(f, "(")?;
                for (i, g) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∨ ")?;
                    }
                    write!(f, "{g}")?;
                }
                write!(f, ")")
            }
            Formula::Implies(a, b) => write!(f, "({a} → {b})"),
            Formula::Iff(a, b) => write!(f, "({a} ↔ {b})"),
            Formula::Exists { x, body } => write!(f, "∃{x} {body}"),
            Formula::Forall { x, body } => write!(f, "∀{x} {body}"),
            Formula::ExistsAdj { x, anchor, body } => write!(f, "∃{x}⇌{anchor} {body}"),
            Formula::ForallAdj { x, anchor, body } => write!(f, "∀{x}⇌{anchor} {body}"),
            Formula::ExistsNear {
                x,
                anchor,
                radius,
                body,
            } => {
                write!(f, "∃{x}⇌≤{radius}{anchor} {body}")
            }
            Formula::ForallNear {
                x,
                anchor,
                radius,
                body,
            } => {
                write!(f, "∀{x}⇌≤{radius}{anchor} {body}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::*;
    use lph_graphs::ElemId;

    /// The string 010011 of Section 2.3 as a structure.
    fn string_structure() -> Structure {
        let mut s = Structure::new(6, 1, 1);
        for i in 0..5 {
            s.add_pair(0, ElemId(i), ElemId(i + 1));
        }
        for i in [1, 4, 5] {
            s.add_unary(0, ElemId(i));
        }
        s
    }

    #[test]
    fn atoms_evaluate() {
        let s = string_structure();
        let x = FoVar(0);
        let y = FoVar(1);
        let mut sig = Assignment::new();
        sig.push_fo(x, ElemId(1));
        sig.push_fo(y, ElemId(2));
        assert!(unary(0, x).eval(&s, &mut sig));
        assert!(!unary(0, y).eval(&s, &mut sig));
        assert!(edge(0, x, y).eval(&s, &mut sig));
        assert!(!edge(0, y, x).eval(&s, &mut sig));
        assert!(!eq(x, y).eval(&s, &mut sig));
    }

    #[test]
    fn unbounded_quantifiers_evaluate() {
        let s = string_structure();
        let x = FoVar(0);
        // ∃x ⊙₁x — some bit is 1.
        assert!(exists(x, unary(0, x)).eval(&s, &mut Assignment::new()));
        // ∀x ⊙₁x — not all bits are 1.
        assert!(!forall(x, unary(0, x)).eval(&s, &mut Assignment::new()));
    }

    #[test]
    fn bounded_quantifier_sees_only_the_ball() {
        let s = string_structure();
        let (x, y) = (FoVar(0), FoVar(1));
        let mut sig = Assignment::new();
        sig.push_fo(y, ElemId(0));
        // Within distance 1 of element 0 (elements 0 and 1): a 1-bit exists.
        assert!(exists_near(x, y, 1, unary(0, x)).eval(&s, &mut sig));
        // Within distance 0 (only element 0): none.
        assert!(!exists_near(x, y, 0, unary(0, x)).eval(&s, &mut sig));
        // Radius 0 really substitutes x := y.
        assert!(exists_near(x, y, 0, eq(x, y)).eval(&s, &mut sig));
    }

    #[test]
    fn second_order_atoms_use_the_assignment() {
        let s = string_structure();
        let r = SoVar::binary(0);
        let (x, y) = (FoVar(0), FoVar(1));
        let mut rel = crate::Relation::empty(2);
        rel.insert(vec![ElemId(3), ElemId(0)]);
        let mut sig = Assignment::new();
        sig.push_so(r, rel);
        sig.push_fo(x, ElemId(3));
        sig.push_fo(y, ElemId(0));
        assert!(app(r, vec![x, y]).eval(&s, &mut sig));
        assert!(!app(r, vec![y, x]).eval(&s, &mut sig));
    }

    #[test]
    fn free_variables_follow_table_one() {
        let (x, y, z) = (FoVar(0), FoVar(1), FoVar(2));
        let phi = exists_near(z, y, 1, and(vec![eq(z, x), unary(0, z)]));
        // free(∃z⇌y φ) = {y} ∪ free(φ) \ {z} = {x, y}.
        let free: Vec<FoVar> = phi.free_fo().into_iter().collect();
        assert_eq!(free, vec![x, y]);
    }

    #[test]
    fn bf_classification() {
        let (x, y) = (FoVar(0), FoVar(1));
        assert!(exists_near(x, y, 2, unary(0, x)).is_bf());
        assert!(!exists(x, unary(0, x)).is_bf());
        assert!(!forall_near(x, y, 1, exists(y, eq(x, y))).is_bf());
        assert!(not(and(vec![eq(x, y), or(vec![unary(0, x)])])).is_bf());
    }

    #[test]
    fn bounded_depth_adds_radii() {
        let (x, y, z) = (FoVar(0), FoVar(1), FoVar(2));
        let phi = exists_near(x, y, 2, forall_near(z, x, 3, eq(z, z)));
        assert_eq!(phi.bounded_depth(), 5);
        assert_eq!(eq(x, y).bounded_depth(), 0);
    }

    #[test]
    fn derived_connectives_evaluate() {
        let s = string_structure();
        let x = FoVar(0);
        let mut sig = Assignment::new();
        sig.push_fo(x, ElemId(1));
        assert!(implies(Formula::False, unary(0, x)).eval(&s, &mut sig));
        assert!(iff(unary(0, x), Formula::True).eval(&s, &mut sig));
        assert!(Formula::And(vec![]).eval(&s, &mut sig));
        assert!(!Formula::Or(vec![]).eval(&s, &mut sig));
    }

    #[test]
    fn display_is_readable() {
        let (x, y) = (FoVar(0), FoVar(1));
        let phi = exists_near(x, y, 1, not(eq(x, y)));
        assert_eq!(phi.to_string(), "∃x0⇌≤1x1 ¬x0 ≐ x1");
    }

    #[test]
    fn node_count_is_structural_size() {
        let (x, y) = (FoVar(0), FoVar(1));
        assert_eq!(eq(x, y).node_count(), 1);
        assert_eq!(not(eq(x, y)).node_count(), 2);
        assert_eq!(and(vec![eq(x, y), eq(y, x)]).node_count(), 3);
        assert_eq!(exists_near(x, y, 2, not(eq(x, y))).node_count(), 3);
    }

    #[test]
    fn so_vars_are_collected() {
        let r = SoVar::set(3);
        let x = FoVar(0);
        let phi = forall_near(x, FoVar(1), 1, app(r, vec![x]));
        assert_eq!(phi.so_vars().into_iter().collect::<Vec<_>>(), vec![r]);
    }
}
