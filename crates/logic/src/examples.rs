//! The paper's example formulas (Section 5.2, Examples 2–7) as executable
//! constructors, together with the `PointsTo` spanning-forest schema of
//! Example 4.
//!
//! Fixed variable conventions (all constructors use the same):
//!
//! * `x = FoVar(0)` — the outer `∀°x` variable of every LFO matrix;
//! * helper first-order variables are drawn from indices ≥ 10;
//! * second-order variables: `P = binary 0`, `X = set 1`, `Y = set 2`,
//!   `H = binary 3`, `S = set 4`, `C = set 5`, `C₀,C₁,C₂ = sets 6,7,8`.

use crate::dsl::*;
use crate::sentence::{Matrix, SoBlock};
use crate::var::{FoVar, SoVar};
use crate::{Formula, Sentence};

/// The LFO universal variable `x`.
pub fn var_x() -> FoVar {
    FoVar(0)
}

/// The spanning-forest pointer relation `P` (Example 4).
pub fn var_p() -> SoVar {
    SoVar::binary(0)
}

/// Adam's challenge set `X` (Example 4).
pub fn var_big_x() -> SoVar {
    SoVar::set(1)
}

/// Eve's charge set `Y` (Example 4).
pub fn var_big_y() -> SoVar {
    SoVar::set(2)
}

/// The spanning-subgraph relation `H` (Example 6).
pub fn var_h() -> SoVar {
    SoVar::binary(3)
}

/// Adam's partition set `S` (Example 6).
pub fn var_s() -> SoVar {
    SoVar::set(4)
}

/// Eve's case-distinction set `C` (Example 6).
pub fn var_c() -> SoVar {
    SoVar::set(5)
}

/// The three color sets `C₀, C₁, C₂` (Example 3).
pub fn var_colors() -> [SoVar; 3] {
    [SoVar::set(6), SoVar::set(7), SoVar::set(8)]
}

/// **Example 2** — `ALL-SELECTED` as the LFO sentence
/// `∀°x IsSelected(x)`.
pub fn all_selected() -> Sentence {
    let x = var_x();
    let (a1, a2, a3) = (FoVar(10), FoVar(11), FoVar(12));
    Sentence::lfo(x, implies(is_node(x, a3), is_selected(x, a1, a2)))
}

/// `WellColored(x)` (Example 3): `x` has exactly one of the three colors
/// and differs from all neighbors.
pub fn well_colored(x: FoVar) -> Formula {
    let [c0, c1, c2] = var_colors();
    let colors = [c0, c1, c2];
    let y = FoVar(13);
    let aux = FoVar(14);
    let has_some = or(colors.iter().map(|&c| app(c, vec![x])).collect());
    let mut exclusive = Vec::new();
    for i in 0..3 {
        for j in 0..3 {
            if i != j {
                exclusive.push(not(and(vec![
                    app(colors[i], vec![x]),
                    app(colors[j], vec![x]),
                ])));
            }
        }
    }
    let differs = forall_node_adj(
        y,
        x,
        aux,
        and(colors
            .iter()
            .map(|&c| not(and(vec![app(c, vec![x]), app(c, vec![y])])))
            .collect()),
    );
    and(vec![has_some, and(exclusive), differs])
}

/// **Example 3** — `3-COLORABLE` as the `Σ₁^LFO` sentence
/// `∃C₀,C₁,C₂ ∀°x WellColored(x)`.
pub fn three_colorable() -> Sentence {
    let x = var_x();
    let aux = FoVar(15);
    Sentence::new(
        vec![SoBlock::exists(var_colors().to_vec())],
        Matrix::Lfo {
            x,
            body: implies(is_node(x, aux), well_colored(x)),
        },
    )
}

/// The `k-COLORABLE` generalization of Example 3 (the paper's Proposition
/// 21 uses `k = 2`): `∃C₀,…,C_{k−1} ∀°x WellColoredₖ(x)`.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn k_colorable(k: usize) -> Sentence {
    assert!(k >= 1);
    let x = var_x();
    let aux = FoVar(15);
    let y = FoVar(13);
    let aux2 = FoVar(14);
    let colors: Vec<SoVar> = (0..k).map(|i| SoVar::set(30 + i as u32)).collect();
    let has_some = or(colors.iter().map(|&c| app(c, vec![x])).collect());
    let mut exclusive = Vec::new();
    for i in 0..k {
        for j in 0..k {
            if i != j {
                exclusive.push(not(and(vec![
                    app(colors[i], vec![x]),
                    app(colors[j], vec![x]),
                ])));
            }
        }
    }
    let differs = forall_node_adj(
        y,
        x,
        aux2,
        and(colors
            .iter()
            .map(|&c| not(and(vec![app(c, vec![x]), app(c, vec![y])])))
            .collect()),
    );
    let body = implies(
        is_node(x, aux),
        and(vec![has_some, and(exclusive), differs]),
    );
    Sentence::new(vec![SoBlock::exists(colors)], Matrix::Lfo { x, body })
}

/// The `PointsTo[θ]` formula schema of Example 4: `x` has a unique parent
/// pointer under `P`; roots satisfy `θ` and are positively charged; children
/// copy or flip their parent's charge in `Y` according to membership in `X`.
///
/// `theta` receives the variable at which the target condition is
/// evaluated.
pub fn points_to(x: FoVar, theta: impl Fn(FoVar) -> Formula) -> Formula {
    let p = var_p();
    let big_x = var_big_x();
    let big_y = var_big_y();
    let y = FoVar(16);
    let z = FoVar(17);
    let aux = FoVar(18);

    let unique_parent = exists_node_near(
        y,
        x,
        1,
        aux,
        and(vec![
            app(p, vec![x, y]),
            forall_node_near(z, x, 1, aux, implies(app(p, vec![x, z]), eq(z, y))),
        ]),
    );
    let root_case = implies(app(p, vec![x, x]), and(vec![theta(x), app(big_y, vec![x])]));
    let child_case = implies(
        not(app(p, vec![x, x])),
        exists_node_adj(
            y,
            x,
            aux,
            and(vec![
                app(p, vec![x, y]),
                iff(
                    app(big_y, vec![x]),
                    not(iff(app(big_y, vec![y]), app(big_x, vec![x]))),
                ),
            ]),
        ),
    );
    and(vec![unique_parent, root_case, child_case])
}

/// **Example 4** — `NOT-ALL-SELECTED` as the `Σ₃^LFO` sentence
/// `∃P ∀X ∃Y ∀°x PointsTo[¬IsSelected](x)`.
pub fn not_all_selected() -> Sentence {
    let x = var_x();
    let aux = FoVar(19);
    let body = implies(
        is_node(x, aux),
        points_to(x, |v| not(is_selected(v, FoVar(20), FoVar(21)))),
    );
    Sentence::new(
        vec![
            SoBlock::exists(vec![var_p()]),
            SoBlock::forall(vec![var_big_x()]),
            SoBlock::exists(vec![var_big_y()]),
        ],
        Matrix::Lfo { x, body },
    )
}

/// **Example 5** — `NON-3-COLORABLE` as the `Π₄^LFO` sentence
/// `∀C₀,C₁,C₂ ∃P ∀X ∃Y ∀°x PointsTo[¬WellColored](x)`.
pub fn non_three_colorable() -> Sentence {
    let x = var_x();
    let aux = FoVar(19);
    let body = implies(is_node(x, aux), points_to(x, |v| not(well_colored(v))));
    Sentence::new(
        vec![
            SoBlock::forall(var_colors().to_vec()),
            SoBlock::exists(vec![var_p()]),
            SoBlock::forall(vec![var_big_x()]),
            SoBlock::exists(vec![var_big_y()]),
        ],
        Matrix::Lfo { x, body },
    )
}

/// `DegreeTwo(x)` (Example 6): `x` has exactly two `H`-neighbors, and `H`
/// is symmetric at `x`.
pub fn degree_two(x: FoVar) -> Formula {
    let h = var_h();
    let (y1, y2, z, aux) = (FoVar(22), FoVar(23), FoVar(24), FoVar(25));
    exists_node_adj(
        y1,
        x,
        aux,
        exists_node_adj(
            y2,
            x,
            aux,
            and(vec![
                neq(y1, y2),
                app(h, vec![x, y1]),
                app(h, vec![y1, x]),
                app(h, vec![x, y2]),
                app(h, vec![y2, x]),
                forall_node_adj(
                    z,
                    x,
                    aux,
                    implies(
                        or(vec![app(h, vec![x, z]), app(h, vec![z, x])]),
                        or(vec![eq(z, y1), eq(z, y2)]),
                    ),
                ),
            ]),
        ),
    )
}

/// `InAgreementOn[R](x)` (Example 6): all neighbors of `x` agree with `x`
/// about membership in the set `R`.
pub fn in_agreement_on(set: SoVar, x: FoVar) -> Formula {
    let y = FoVar(26);
    let aux = FoVar(27);
    forall_node_adj(y, x, aux, iff(app(set, vec![x]), app(set, vec![y])))
}

/// `DiscontinuityAt(x)` (Example 6): some `H`-neighbor of `x` lies on the
/// other side of the partition `S`.
pub fn discontinuity_at(x: FoVar) -> Formula {
    let h = var_h();
    let s = var_s();
    let y = FoVar(28);
    let aux = FoVar(29);
    exists_node_adj(
        y,
        x,
        aux,
        and(vec![
            app(h, vec![x, y]),
            iff(app(s, vec![x]), not(app(s, vec![y]))),
        ]),
    )
}

/// **Example 6** — `HAMILTONIAN` as the `Σ₅^LFO` sentence
/// `∃H ∀S ∃C,P ∀X ∃Y ∀°x (DegreeTwo(x) ∧ ConnectivityTest(x))`.
pub fn hamiltonian() -> Sentence {
    let x = var_x();
    let c = var_c();
    let s = var_s();
    let aux = FoVar(19);
    let trivial_case = implies(not(app(c, vec![x])), in_agreement_on(s, x));
    let partitioned_case = implies(app(c, vec![x]), points_to(x, discontinuity_at));
    let connectivity_test = and(vec![in_agreement_on(c, x), trivial_case, partitioned_case]);
    let body = implies(is_node(x, aux), and(vec![degree_two(x), connectivity_test]));
    Sentence::new(
        vec![
            SoBlock::exists(vec![var_h()]),
            SoBlock::forall(vec![var_s()]),
            SoBlock::exists(vec![var_c(), var_p()]),
            SoBlock::forall(vec![var_big_x()]),
            SoBlock::exists(vec![var_big_y()]),
        ],
        Matrix::Lfo { x, body },
    )
}

/// **Example 7** — `NON-HAMILTONIAN` as the `Π₄^LFO` sentence
/// `∀H ∃C,S,P ∀X ∃Y ∀°x (InAgreementOn[C](x) ∧ InvalidCase(x) ∧ DisjointCase(x))`.
pub fn non_hamiltonian() -> Sentence {
    let x = var_x();
    let c = var_c();
    let s = var_s();
    let aux = FoVar(19);
    let invalid_case = implies(not(app(c, vec![x])), points_to(x, |v| not(degree_two(v))));
    let division_at = |v: FoVar| not(in_agreement_on(s, v));
    let disjoint_case = implies(
        app(c, vec![x]),
        and(vec![not(discontinuity_at(x)), points_to(x, division_at)]),
    );
    let body = implies(
        is_node(x, aux),
        and(vec![in_agreement_on(c, x), invalid_case, disjoint_case]),
    );
    Sentence::new(
        vec![
            SoBlock::forall(vec![var_h()]),
            SoBlock::exists(vec![var_c(), var_s(), var_p()]),
            SoBlock::forall(vec![var_big_x()]),
            SoBlock::exists(vec![var_big_y()]),
        ],
        Matrix::Lfo { x, body },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::CheckOptions;
    use lph_graphs::{enumerate, generators, BitString, GraphStructure, LabeledGraph};

    fn strong_opts() -> CheckOptions {
        CheckOptions {
            max_matrix_evals: 50_000_000,
            max_tuples_per_var: 22,
        }
    }

    fn truth(s: &Sentence, g: &LabeledGraph) -> bool {
        s.check_on_graph(&GraphStructure::of(g), &strong_opts())
            .expect("within budget")
    }

    #[test]
    fn levels_match_the_paper() {
        assert_eq!(all_selected().level().to_string(), "Σ0 = Π0");
        assert_eq!(three_colorable().level().to_string(), "Σ1");
        assert_eq!(not_all_selected().level().to_string(), "Σ3");
        assert_eq!(non_three_colorable().level().to_string(), "Π4");
        assert_eq!(hamiltonian().level().to_string(), "Σ5");
        assert_eq!(non_hamiltonian().level().to_string(), "Π4");
    }

    #[test]
    fn all_matrices_are_local() {
        for s in [
            all_selected(),
            three_colorable(),
            not_all_selected(),
            non_three_colorable(),
            hamiltonian(),
            non_hamiltonian(),
        ] {
            assert!(s.is_local(), "matrix of {s} must be LFO");
        }
    }

    #[test]
    fn all_selected_agrees_with_ground_truth() {
        let phi = all_selected();
        let zero = BitString::from_bits01("0");
        let one = BitString::from_bits01("1");
        for base in enumerate::connected_graphs_up_to(3) {
            for g in enumerate::binary_labelings(&base, &zero, &one) {
                let expected = g.labels().iter().all(|l| *l == one);
                assert_eq!(truth(&phi, &g), expected, "graph: {g}");
            }
        }
        // Longer labels starting with 1 are not "selected".
        let g = generators::labeled_path(&["11", "1"]);
        assert!(!truth(&phi, &g));
    }

    #[test]
    fn three_colorable_agrees_with_ground_truth_on_small_graphs() {
        let phi = three_colorable();
        // K4 is not 3-colorable; C5 and K3 are; paths are.
        assert!(truth(&phi, &generators::complete(3)));
        assert!(!truth(&phi, &generators::complete(4)));
        assert!(truth(&phi, &generators::cycle(5)));
        assert!(truth(&phi, &generators::path(4)));
    }

    #[test]
    fn k_colorable_matches_chromatic_numbers() {
        // χ(C5) = 3, χ(P4) = 2, χ(K4) = 4.
        assert!(!truth(&k_colorable(2), &generators::cycle(5)));
        assert!(truth(&k_colorable(3), &generators::cycle(5)));
        assert!(truth(&k_colorable(2), &generators::path(4)));
        assert!(!truth(&k_colorable(3), &generators::complete(4)));
        assert!(truth(&k_colorable(4), &generators::complete(4)));
        assert!(truth(&k_colorable(1), &generators::path(1)));
        assert_eq!(k_colorable(2).level().to_string(), "Σ1");
    }

    #[test]
    fn not_all_selected_on_two_node_graphs() {
        let phi = not_all_selected();
        let g = generators::labeled_path(&["1", "0"]);
        assert!(truth(&phi, &g), "an unselected node exists");
        let g = generators::labeled_path(&["1", "1"]);
        assert!(!truth(&phi, &g), "all nodes selected");
    }

    #[test]
    fn not_all_selected_on_three_node_graphs() {
        let phi = not_all_selected();
        for labels in [
            ["0", "1", "1"],
            ["1", "0", "1"],
            ["1", "1", "0"],
            ["0", "0", "0"],
        ] {
            let g = generators::labeled_cycle(&labels);
            assert!(truth(&phi, &g), "labels {labels:?}");
        }
        let g = generators::labeled_cycle(&["1", "1", "1"]);
        assert!(!truth(&phi, &g));
    }

    #[test]
    fn points_to_demands_unique_parents() {
        // With P = ∅ no node has a parent, so PointsTo fails everywhere;
        // NOT-ALL-SELECTED must hold via some other P on a yes instance,
        // but the empty witness must lose.
        use crate::var::Relation;
        let g = generators::labeled_path(&["0", "0"]);
        let gs = GraphStructure::of(&g);
        let phi = not_all_selected();
        let empty_p = Relation::empty(2);
        let lost = phi
            .check_with_witness(
                &[empty_p],
                gs.structure(),
                Some(gs.node_elems()),
                &strong_opts(),
            )
            .unwrap();
        assert!(!lost, "the empty forest is not a winning first move");
        // But the correct witness (both nodes point to themselves — both are
        // unselected roots) wins.
        let mut good_p = Relation::empty(2);
        for &e in gs.node_elems() {
            good_p.insert(vec![e, e]);
        }
        let won = phi
            .check_with_witness(
                &[good_p],
                gs.structure(),
                Some(gs.node_elems()),
                &strong_opts(),
            )
            .unwrap();
        assert!(won);
    }

    #[test]
    fn adam_singleton_catches_cycles_in_p() {
        // A 2-cycle in P (u→v→u) on an all-unselected graph: Eve's forest is
        // invalid; Adam's singleton X must beat every Y. The full game then
        // rejects this witness.
        use crate::var::Relation;
        let g = generators::labeled_path(&["0", "0"]);
        let gs = GraphStructure::of(&g);
        let (u, v) = (gs.node_elems()[0], gs.node_elems()[1]);
        let mut cyc_p = Relation::empty(2);
        cyc_p.insert(vec![u, v]);
        cyc_p.insert(vec![v, u]);
        let phi = not_all_selected();
        let won = phi
            .check_with_witness(
                &[cyc_p],
                gs.structure(),
                Some(gs.node_elems()),
                &strong_opts(),
            )
            .unwrap();
        assert!(
            !won,
            "a cyclic P must lose: no root ever witnesses ¬IsSelected"
        );
    }

    #[test]
    fn degree_two_evaluates_on_explicit_h() {
        use crate::var::{Assignment, Relation};
        let g = generators::cycle(4);
        let gs = GraphStructure::of(&g);
        let mut h = Relation::empty(2);
        for (a, b) in g.edges() {
            h.insert(vec![gs.node_elem(a), gs.node_elem(b)]);
            h.insert(vec![gs.node_elem(b), gs.node_elem(a)]);
        }
        let x = var_x();
        let mut sigma = Assignment::new();
        sigma.push_so(var_h(), h);
        sigma.push_fo(x, gs.node_elem(lph_graphs::NodeId(0)));
        assert!(degree_two(x).eval(gs.structure(), &mut sigma));
        // Remove one orientation: symmetry check fails.
        let mut h2 = Relation::empty(2);
        for (a, b) in g.edges() {
            h2.insert(vec![gs.node_elem(a), gs.node_elem(b)]);
        }
        sigma.pop_so();
        sigma.push_so(var_h(), h2);
        assert!(!degree_two(x).eval(gs.structure(), &mut sigma));
    }

    #[test]
    fn bounded_depths_are_small_constants() {
        // The arbiter radius of each example formula is a small constant —
        // the locality the paper insists on.
        assert!(all_selected().radius() <= 3);
        assert!(three_colorable().radius() <= 3);
        assert!(not_all_selected().radius() <= 4);
        assert!(hamiltonian().radius() <= 5);
    }
}
