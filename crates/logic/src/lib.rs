//! First-order logic with bounded quantifiers (`BF`), local first-order
//! logic (`LFO`), and the (local / monadic) second-order hierarchies of
//! Section 5 of *A LOCAL View of the Polynomial Hierarchy* (Reiter,
//! PODC 2024), together with model checking over the relational structures
//! of `lph-graphs`.
//!
//! # Layout
//!
//! * [`Formula`] — the quantifier-free/first-order core with both unbounded
//!   (`∃x φ`) and **bounded** (`∃x ⇌≤r y φ`) quantification, Table 1's
//!   syntax and semantics.
//! * [`Sentence`] — a prenex block of second-order quantifiers over an
//!   `LFO` or `FO` matrix; [`Sentence::level`] computes the position
//!   `Σℓ/Πℓ` in the (local) second-order hierarchy, and
//!   [`Sentence::is_monadic`] identifies the monadic fragments of
//!   Section 9.2.
//! * [`check`] — brute-force second-order model checking with support
//!   restrictions and an evaluation budget (the game between Eve and Adam,
//!   solved exhaustively on small structures).
//! * [`examples`] — the paper's Examples 2–7 as executable constructors:
//!   `ALL-SELECTED`, `3-COLORABLE` (`Σ₁`), `NOT-ALL-SELECTED` (`Σ₃`),
//!   `NON-3-COLORABLE` (`Π₄`), `HAMILTONIAN` (`Σ₅`),
//!   `NON-HAMILTONIAN` (`Π₄`).
//!
//! # Example
//!
//! ```
//! use lph_graphs::{generators, GraphStructure};
//! use lph_logic::{check::CheckOptions, examples};
//!
//! let g = generators::cycle(4);
//! let s = GraphStructure::of(&g);
//! let phi = examples::three_colorable();
//! assert!(phi.check_on_graph(&s, &CheckOptions::default()).unwrap());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod check;
pub mod dsl;
pub mod examples;
mod formula;
mod plan;
mod sentence;
mod var;

pub use formula::Formula;
pub use plan::{CompiledSentence, EvalBackend, PlanOp};
pub use sentence::{Level, Matrix, Quantifier, Sentence, SoBlock, SoQuant, Support};
pub use var::{Assignment, FoVar, Relation, SoVar, VarPool};
