use std::fmt;

use crate::var::{FoVar, SoVar};
use crate::Formula;

/// Whether a quantifier block is existential (Eve's move) or universal
/// (Adam's move).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Quantifier {
    /// `∃` — chosen by Eve.
    Exists,
    /// `∀` — chosen by Adam.
    Forall,
}

impl Quantifier {
    /// The other player's quantifier.
    pub fn dual(self) -> Quantifier {
        match self {
            Quantifier::Exists => Quantifier::Forall,
            Quantifier::Forall => Quantifier::Exists,
        }
    }
}

impl fmt::Display for Quantifier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Quantifier::Exists => write!(f, "∃"),
            Quantifier::Forall => write!(f, "∀"),
        }
    }
}

/// A *support hint* restricting the tuples a quantified relation may
/// contain during model checking.
///
/// The paper's formulas over graphs only ever apply their second-order
/// variables to node elements (`∃°`/`∀°`-guarded positions), so restricting
/// enumeration to node tuples is semantics-preserving for them while
/// shrinking the search space exponentially. `All` performs unrestricted
/// enumeration (needed for Fagin-style completeness arguments).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Support {
    /// Tuples over the full domain.
    All,
    /// Tuples over node elements only (graph structural representations).
    NodesOnly,
}

/// One quantified relation variable with its support hint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SoQuant {
    /// The relation variable.
    pub var: SoVar,
    /// Enumeration support.
    pub support: Support,
}

impl SoQuant {
    /// A variable quantified over node tuples only.
    pub fn nodes(var: SoVar) -> Self {
        SoQuant {
            var,
            support: Support::NodesOnly,
        }
    }

    /// A variable quantified over all tuples.
    pub fn all(var: SoVar) -> Self {
        SoQuant {
            var,
            support: Support::All,
        }
    }
}

/// A maximal block of second-order quantifiers of one kind
/// (`∃R₁ … ∃R_n` or `∀R₁ … ∀R_n`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SoBlock {
    /// The block's quantifier.
    pub quantifier: Quantifier,
    /// The variables bound by the block, in order.
    pub vars: Vec<SoQuant>,
}

impl SoBlock {
    /// An existential block over node-supported variables.
    pub fn exists(vars: Vec<SoVar>) -> Self {
        SoBlock {
            quantifier: Quantifier::Exists,
            vars: vars.into_iter().map(SoQuant::nodes).collect(),
        }
    }

    /// A universal block over node-supported variables.
    pub fn forall(vars: Vec<SoVar>) -> Self {
        SoBlock {
            quantifier: Quantifier::Forall,
            vars: vars.into_iter().map(SoQuant::nodes).collect(),
        }
    }
}

/// The first-order matrix of a [`Sentence`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Matrix {
    /// An `LFO` matrix `∀x φ` with `φ ∈ BF` — the shape required by the
    /// local second-order hierarchy.
    Lfo {
        /// The single universally quantified first-order variable.
        x: FoVar,
        /// The bounded-fragment body.
        body: Formula,
    },
    /// A general first-order sentence (for the unrestricted second-order
    /// hierarchy `Σℓ^FO` / `Πℓ^FO`).
    Fo(Formula),
}

impl Matrix {
    /// The matrix's formula body.
    pub fn body(&self) -> &Formula {
        match self {
            Matrix::Lfo { body, .. } => body,
            Matrix::Fo(f) => f,
        }
    }

    /// Whether the matrix is of the local (`LFO`) shape.
    pub fn is_local(&self) -> bool {
        matches!(self, Matrix::Lfo { .. })
    }
}

/// A sentence's position in a second-order hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Level {
    /// The number of quantifier-alternation blocks (`ℓ`); `0` means no
    /// second-order prefix.
    pub ell: usize,
    /// The leading quantifier, if `ell > 0` (`Exists` → `Σℓ`,
    /// `Forall` → `Πℓ`).
    pub leading: Option<Quantifier>,
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.leading {
            None => write!(f, "Σ0 = Π0"),
            Some(Quantifier::Exists) => write!(f, "Σ{}", self.ell),
            Some(Quantifier::Forall) => write!(f, "Π{}", self.ell),
        }
    }
}

/// A prenex second-order sentence: a sequence of quantifier blocks over a
/// first-order matrix. Instances with an [`Matrix::Lfo`] matrix are the
/// sentences of the *local second-order hierarchy*
/// (`Σℓ^LFO` / `Πℓ^LFO`, Section 5.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sentence {
    /// The second-order prefix.
    pub blocks: Vec<SoBlock>,
    /// The first-order matrix.
    pub matrix: Matrix,
}

impl Sentence {
    /// Builds and validates a sentence.
    ///
    /// # Panics
    ///
    /// Panics if an `Lfo` matrix body is not in `BF`, has free first-order
    /// variables other than its `∀x` variable, or if the matrix mentions a
    /// second-order variable not bound by the prefix.
    pub fn new(blocks: Vec<SoBlock>, matrix: Matrix) -> Self {
        match &matrix {
            Matrix::Lfo { x, body } => {
                assert!(
                    body.is_bf(),
                    "LFO matrix body must be in the bounded fragment"
                );
                let free = body.free_fo();
                assert!(
                    free.iter().all(|v| v == x),
                    "LFO matrix body may only have {x} free, found {free:?}"
                );
            }
            Matrix::Fo(f) => {
                assert!(
                    f.free_fo().is_empty(),
                    "FO matrix must be a sentence (no free first-order variables)"
                );
            }
        }
        let bound: Vec<SoVar> = blocks
            .iter()
            .flat_map(|b| b.vars.iter().map(|q| q.var))
            .collect();
        {
            let mut seen = bound.clone();
            seen.sort();
            let before = seen.len();
            seen.dedup();
            assert_eq!(
                before,
                seen.len(),
                "second-order variables must be distinct"
            );
        }
        for v in matrix.body().so_vars() {
            assert!(bound.contains(&v), "unbound second-order variable {v}");
        }
        Sentence { blocks, matrix }
    }

    /// An `LFO` sentence `∀x φ` with no second-order prefix.
    pub fn lfo(x: FoVar, body: Formula) -> Self {
        Sentence::new(Vec::new(), Matrix::Lfo { x, body })
    }

    /// The minimal syntactic level in the (local) second-order hierarchy:
    /// adjacent blocks with equal quantifiers are merged before counting
    /// alternations.
    pub fn level(&self) -> Level {
        let mut merged: Vec<Quantifier> = Vec::new();
        for b in &self.blocks {
            if b.vars.is_empty() {
                continue;
            }
            if merged.last() != Some(&b.quantifier) {
                merged.push(b.quantifier);
            }
        }
        Level {
            ell: merged.len(),
            leading: merged.first().copied(),
        }
    }

    /// Whether all quantified relation variables are unary (the *monadic*
    /// fragments `mΣℓ` / `mΠℓ` of Section 9.2).
    pub fn is_monadic(&self) -> bool {
        self.blocks
            .iter()
            .all(|b| b.vars.iter().all(|q| q.var.arity == 1))
    }

    /// Whether the sentence belongs to the *local* hierarchy (`LFO` matrix).
    pub fn is_local(&self) -> bool {
        self.matrix.is_local()
    }

    /// The flattened quantifier sequence, one entry per variable.
    pub fn flat_quantifiers(&self) -> Vec<(Quantifier, SoQuant)> {
        self.blocks
            .iter()
            .flat_map(|b| b.vars.iter().map(move |q| (b.quantifier, *q)))
            .collect()
    }

    /// The radius up to which the matrix body can "see" (its bounded
    /// quantifier depth) — the `r` of the arbiter compiled from this
    /// sentence in Theorem 12.
    pub fn radius(&self) -> usize {
        self.matrix.body().bounded_depth()
    }
}

impl fmt::Display for Sentence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in &self.blocks {
            for q in &b.vars {
                write!(f, "{}{} ", b.quantifier, q.var)?;
            }
        }
        match &self.matrix {
            Matrix::Lfo { x, body } => write!(f, "∀{x} {body}"),
            Matrix::Fo(body) => write!(f, "{body}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::*;

    fn bf_body(x: FoVar) -> Formula {
        // A trivial BF formula with only x free.
        exists_adj(FoVar(99), x, Formula::True)
    }

    #[test]
    fn lfo_sentence_has_level_zero() {
        let x = FoVar(0);
        let s = Sentence::lfo(x, bf_body(x));
        let lv = s.level();
        assert_eq!(lv.ell, 0);
        assert_eq!(lv.leading, None);
        assert!(s.is_local());
        assert_eq!(lv.to_string(), "Σ0 = Π0");
    }

    #[test]
    fn sigma_and_pi_levels() {
        let x = FoVar(0);
        let a = SoVar::set(0);
        let b = SoVar::set(1);
        let c = SoVar::binary(2);
        let body = and(vec![
            bf_body(x),
            app(a, vec![x]),
            app(b, vec![x]),
            app(c, vec![x, x]),
        ]);
        let s = Sentence::new(
            vec![
                SoBlock::exists(vec![a]),
                SoBlock::forall(vec![b]),
                SoBlock::exists(vec![c]),
            ],
            Matrix::Lfo {
                x,
                body: body.clone(),
            },
        );
        let lv = s.level();
        assert_eq!((lv.ell, lv.leading), (3, Some(Quantifier::Exists)));
        assert_eq!(lv.to_string(), "Σ3");
        assert!(!s.is_monadic());

        let s = Sentence::new(
            vec![SoBlock::forall(vec![a, b]), SoBlock::exists(vec![c])],
            Matrix::Lfo { x, body },
        );
        assert_eq!(s.level().to_string(), "Π2");
    }

    #[test]
    fn adjacent_equal_blocks_merge() {
        let x = FoVar(0);
        let a = SoVar::set(0);
        let b = SoVar::set(1);
        let body = and(vec![bf_body(x), app(a, vec![x]), app(b, vec![x])]);
        let s = Sentence::new(
            vec![SoBlock::exists(vec![a]), SoBlock::exists(vec![b])],
            Matrix::Lfo { x, body },
        );
        assert_eq!(s.level().ell, 1);
    }

    #[test]
    #[should_panic(expected = "bounded fragment")]
    fn lfo_rejects_unbounded_bodies() {
        let x = FoVar(0);
        let y = FoVar(1);
        let _ = Sentence::lfo(x, exists(y, eq(x, y)));
    }

    #[test]
    #[should_panic(expected = "unbound second-order variable")]
    fn rejects_unbound_so_vars() {
        let x = FoVar(0);
        let _ = Sentence::lfo(x, app(SoVar::set(7), vec![x]));
    }

    #[test]
    #[should_panic(expected = "may only have")]
    fn rejects_stray_free_variables() {
        let x = FoVar(0);
        let y = FoVar(1);
        let _ = Sentence::lfo(x, eq(x, y));
    }

    #[test]
    fn monadic_detection() {
        let x = FoVar(0);
        let a = SoVar::set(0);
        let s = Sentence::new(
            vec![SoBlock::exists(vec![a])],
            Matrix::Lfo {
                x,
                body: and(vec![bf_body(x), app(a, vec![x])]),
            },
        );
        assert!(s.is_monadic());
    }

    #[test]
    fn radius_reports_bounded_depth() {
        let x = FoVar(0);
        let y = FoVar(1);
        let z = FoVar(2);
        let body = exists_near(y, x, 2, exists_adj(z, y, Formula::True));
        let s = Sentence::lfo(x, body);
        assert_eq!(s.radius(), 3);
    }

    #[test]
    fn quantifier_dual() {
        assert_eq!(Quantifier::Exists.dual(), Quantifier::Forall);
        assert_eq!(Quantifier::Forall.dual(), Quantifier::Exists);
    }
}
