//! Concise constructors for [`Formula`]s, plus the graph-specific helper
//! formulas of Section 5 (`IsNode`, `IsBit`, node-restricted quantifiers).
//!
//! On structural representations of graphs (signature `(1, 2)`), relation 0
//! is `⇀₁` (edges and bit successors) and relation 1 is `⇀₂` (bit
//! ownership); the unary relation 0 is `⊙₁` (bits of value 1).

use crate::var::{FoVar, SoVar};
use crate::Formula;

/// `⊙_{rel+1} x`.
pub fn unary(rel: usize, x: FoVar) -> Formula {
    Formula::Unary { rel, x }
}

/// `x ⇀_{rel+1} y`.
pub fn edge(rel: usize, x: FoVar, y: FoVar) -> Formula {
    Formula::Edge { rel, x, y }
}

/// `x ≐ y`.
pub fn eq(x: FoVar, y: FoVar) -> Formula {
    Formula::Eq(x, y)
}

/// `x ≐ y` negated.
pub fn neq(x: FoVar, y: FoVar) -> Formula {
    not(eq(x, y))
}

/// `R(args…)`.
///
/// # Panics
///
/// Panics if the argument count does not match the variable's arity.
pub fn app(rel: SoVar, args: Vec<FoVar>) -> Formula {
    assert_eq!(args.len(), rel.arity as usize, "arity mismatch for {rel}");
    Formula::App { rel, args }
}

/// `¬φ`.
pub fn not(f: Formula) -> Formula {
    Formula::Not(Box::new(f))
}

/// n-ary conjunction.
pub fn and(fs: Vec<Formula>) -> Formula {
    Formula::And(fs)
}

/// n-ary disjunction.
pub fn or(fs: Vec<Formula>) -> Formula {
    Formula::Or(fs)
}

/// `φ → ψ`.
pub fn implies(a: Formula, b: Formula) -> Formula {
    Formula::Implies(Box::new(a), Box::new(b))
}

/// `φ ↔ ψ`.
pub fn iff(a: Formula, b: Formula) -> Formula {
    Formula::Iff(Box::new(a), Box::new(b))
}

/// Unbounded `∃x φ`.
pub fn exists(x: FoVar, body: Formula) -> Formula {
    Formula::Exists {
        x,
        body: Box::new(body),
    }
}

/// Unbounded `∀x φ`.
pub fn forall(x: FoVar, body: Formula) -> Formula {
    Formula::Forall {
        x,
        body: Box::new(body),
    }
}

/// Strict `∃x ⇌ y φ` (Table 1 line 8): `x` ranges over the elements
/// *connected* to `y`, excluding `y` itself on loop-free structures.
///
/// # Panics
///
/// Panics if `x == anchor` (the grammar requires distinct variables).
pub fn exists_adj(x: FoVar, anchor: FoVar, body: Formula) -> Formula {
    assert_ne!(x, anchor, "bounded quantification requires x ≠ y");
    Formula::ExistsAdj {
        x,
        anchor,
        body: Box::new(body),
    }
}

/// Strict `∀x ⇌ y φ`.
///
/// # Panics
///
/// Panics if `x == anchor`.
pub fn forall_adj(x: FoVar, anchor: FoVar, body: Formula) -> Formula {
    assert_ne!(x, anchor, "bounded quantification requires x ≠ y");
    Formula::ForallAdj {
        x,
        anchor,
        body: Box::new(body),
    }
}

/// Bounded `∃x ⇌≤r y φ` (includes the anchor at distance 0).
///
/// # Panics
///
/// Panics if `x == anchor` (the grammar requires distinct variables).
pub fn exists_near(x: FoVar, anchor: FoVar, radius: usize, body: Formula) -> Formula {
    assert_ne!(x, anchor, "bounded quantification requires x ≠ y");
    Formula::ExistsNear {
        x,
        anchor,
        radius,
        body: Box::new(body),
    }
}

/// Bounded `∀x ⇌≤r y φ`.
///
/// # Panics
///
/// Panics if `x == anchor`.
pub fn forall_near(x: FoVar, anchor: FoVar, radius: usize, body: Formula) -> Formula {
    assert_ne!(x, anchor, "bounded quantification requires x ≠ y");
    Formula::ForallNear {
        x,
        anchor,
        radius,
        body: Box::new(body),
    }
}

// --- Graph-specific helpers (structural representations, Section 5.1) ---

/// `IsNode(x) = ¬∃y⇌x (y ⇀₂ x)`: nothing owns `x`, so `x` is a node, not a
/// labeling bit. `aux` must be a variable not otherwise used.
pub fn is_node(x: FoVar, aux: FoVar) -> Formula {
    not(exists_adj(aux, x, edge(1, aux, x)))
}

/// `IsSelected(x)` (Example 2): node `x` is labeled with exactly the string
/// `1`. `aux1`/`aux2` are fresh helper variables.
pub fn is_selected(x: FoVar, aux1: FoVar, aux2: FoVar) -> Formula {
    exists_adj(
        aux1,
        x,
        and(vec![
            is_bit1(aux1, aux2),
            not(exists_adj(
                aux2,
                aux1,
                or(vec![edge(0, aux2, aux1), edge(0, aux1, aux2)]),
            )),
        ]),
    )
}

/// Node-restricted strict adjacency: `∃°y ⇌ x φ`.
pub fn exists_node_adj(x: FoVar, anchor: FoVar, aux: FoVar, body: Formula) -> Formula {
    exists_adj(x, anchor, and(vec![is_node(x, aux), body]))
}

/// Node-restricted strict adjacency: `∀°y ⇌ x φ`.
pub fn forall_node_adj(x: FoVar, anchor: FoVar, aux: FoVar, body: Formula) -> Formula {
    forall_adj(x, anchor, implies(is_node(x, aux), body))
}

/// `IsBit₀(x)`: a labeling bit of value 0.
pub fn is_bit0(x: FoVar, aux: FoVar) -> Formula {
    and(vec![not(is_node(x, aux)), not(unary(0, x))])
}

/// `IsBit₁(x)`: a labeling bit of value 1.
pub fn is_bit1(x: FoVar, aux: FoVar) -> Formula {
    and(vec![not(is_node(x, aux)), unary(0, x)])
}

/// Node-restricted bounded existential: `∃°x ⇌≤r y φ`, i.e.
/// `∃x ⇌≤r y (IsNode(x) ∧ φ)`. `aux` is a fresh helper variable.
pub fn exists_node_near(
    x: FoVar,
    anchor: FoVar,
    radius: usize,
    aux: FoVar,
    body: Formula,
) -> Formula {
    exists_near(x, anchor, radius, and(vec![is_node(x, aux), body]))
}

/// Node-restricted bounded universal: `∀°x ⇌≤r y φ`.
pub fn forall_node_near(
    x: FoVar,
    anchor: FoVar,
    radius: usize,
    aux: FoVar,
    body: Formula,
) -> Formula {
    forall_near(x, anchor, radius, implies(is_node(x, aux), body))
}

/// Node-restricted unbounded universal `∀°x φ` (the outermost quantifier of
/// LFO sentences).
pub fn forall_node(x: FoVar, aux: FoVar, body: Formula) -> Formula {
    forall(x, implies(is_node(x, aux), body))
}

/// Node-restricted unbounded existential `∃°x φ`.
pub fn exists_node(x: FoVar, aux: FoVar, body: Formula) -> Formula {
    exists(x, and(vec![is_node(x, aux), body]))
}

/// `Adjacent(x, y) = x ⇀₁ y ∨ y ⇀₁ x` — since `⇀₁` stores both
/// orientations of every graph edge, either direction works for node pairs,
/// but the symmetric form is also correct on bit chains.
pub fn adjacent(x: FoVar, y: FoVar) -> Formula {
    or(vec![edge(0, x, y), edge(0, y, x)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Assignment;
    use lph_graphs::{generators, GraphStructure, NodeId};

    #[test]
    fn is_node_distinguishes_nodes_from_bits() {
        let g = generators::labeled_path(&["1", "0"]);
        let s = GraphStructure::of(&g);
        let (x, aux) = (FoVar(0), FoVar(1));
        let phi = is_node(x, aux);
        let mut sig = Assignment::new();
        sig.push_fo(x, s.node_elem(NodeId(0)));
        assert!(phi.eval(s.structure(), &mut sig));
        sig.pop_fo();
        sig.push_fo(x, s.bit_elem(NodeId(0), 1).unwrap());
        assert!(!phi.eval(s.structure(), &mut sig));
    }

    #[test]
    fn is_bit_values() {
        let g = generators::labeled_path(&["1", "0"]);
        let s = GraphStructure::of(&g);
        let (x, aux) = (FoVar(0), FoVar(1));
        let mut sig = Assignment::new();
        sig.push_fo(x, s.bit_elem(NodeId(0), 1).unwrap());
        assert!(is_bit1(x, aux).eval(s.structure(), &mut sig));
        assert!(!is_bit0(x, aux).eval(s.structure(), &mut sig));
        sig.pop_fo();
        sig.push_fo(x, s.bit_elem(NodeId(1), 1).unwrap());
        assert!(is_bit0(x, aux).eval(s.structure(), &mut sig));
    }

    #[test]
    fn node_restricted_quantifiers_skip_bits() {
        let g = generators::labeled_path(&["1", "1"]);
        let s = GraphStructure::of(&g);
        let (x, y, aux) = (FoVar(0), FoVar(1), FoVar(2));
        // ∀°y ⇌≤2 x: all nodes within distance 2 are nodes (trivially true),
        // while the unrestricted version is false because bits are not nodes.
        let mut sig = Assignment::new();
        sig.push_fo(x, s.node_elem(NodeId(0)));
        let restricted = forall_node_near(y, x, 2, aux, is_node(y, aux));
        assert!(restricted.eval(s.structure(), &mut sig));
        let unrestricted = forall_near(y, x, 2, is_node(y, aux));
        assert!(!unrestricted.eval(s.structure(), &mut sig));
    }

    #[test]
    fn adjacency_works_both_ways() {
        let g = generators::path(2);
        let s = GraphStructure::of(&g);
        let (x, y) = (FoVar(0), FoVar(1));
        let mut sig = Assignment::new();
        sig.push_fo(x, s.node_elem(NodeId(0)));
        sig.push_fo(y, s.node_elem(NodeId(1)));
        assert!(adjacent(x, y).eval(s.structure(), &mut sig));
        assert!(adjacent(y, x).eval(s.structure(), &mut sig));
    }

    #[test]
    #[should_panic(expected = "x ≠ y")]
    fn bounded_quantifier_rejects_equal_vars() {
        let x = FoVar(0);
        let _ = exists_near(x, x, 1, Formula::True);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn app_checks_arity() {
        let r = SoVar::binary(0);
        let _ = app(r, vec![FoVar(0)]);
    }
}
