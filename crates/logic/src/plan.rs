//! A compilation tier for sentence checking: formulas are lowered once
//! into fused evaluation plans executed by a non-recursive-friendly flat
//! arena walker, and the surrounding Eve/Adam game runs over `u64`
//! relation bitmasks instead of per-candidate [`Relation`] trees.
//!
//! The interpreter in [`crate::check`] pays for its directness: every
//! variable lookup is a linear scan of the assignment stack, every
//! second-order atom allocates a tuple, every bounded quantifier re-runs a
//! BFS for its Gaifman ball, and every game-tree node rebuilds a
//! `BTreeSet`-backed relation. [`CompiledSentence`] removes all four costs:
//!
//! * **Hash-consed plan arena** — the matrix is lowered to a flat
//!   `Vec<PlanOp>` with structurally equal subformulas interned to one
//!   node, variables resolved to dense slots (O(1) reads), and `→`
//!   expanded into `∨/¬`.
//! * **Constant folding** — `⊤`/`⊥` propagate through connectives and
//!   through quantifiers where soundness permits (`∃x φ` and `∀x φ` fold
//!   both ways because domains are non-empty; `⇌≤r` quantifiers fold both
//!   ways because a ball always contains its anchor; plain `⇌` only folds
//!   `∃…⊥ ↝ ⊥` and `∀…⊤ ↝ ⊤` since an element may have no neighbors).
//! * **Short-circuit ordering** — `∧`/`∨` children are stably reordered
//!   cheapest-first by a static cost estimate, so selective atoms run
//!   before quantified subtrees. This is a pure optimization: formula
//!   evaluation has no observable side effects.
//! * **Mask-backed game** — candidate relations stay the `u64` masks the
//!   enumeration already iterates; a second-order atom becomes a
//!   mixed-radix rank plus one bit test. Gaifman balls are memoized per
//!   `(element, radius)` and tuple buffers are reused.
//!
//! The interpreter remains the oracle. A compiled check must return the
//! same verdict and the same [`CheckError`] as the interpreted one —
//! universes are hoisted in prefix order (observationally identical, since
//! the lazy interpreter also computes every universe before the first
//! matrix evaluation), the mask enumeration order and short-circuiting are
//! identical, and the matrix-evaluation budget counts the same events.
//! `crates/logic/tests/compiled_differential.rs` pins this over the corpus
//! and seeded random sentences.

use std::collections::HashMap;
use std::rc::Rc;

use lph_graphs::{ElemId, GraphStructure, Structure};

use crate::check::{CheckError, CheckOptions};
use crate::sentence::{Matrix, Quantifier, Sentence, SoQuant, Support};
use crate::var::{FoVar, Relation, SoVar};
use crate::Formula;

/// Which engine checks a sentence.
///
/// Mirrors `GameBackend` in `lph-core`: [`crate::Sentence::check`] is the
/// semantics (and the differential oracle), [`CompiledSentence`] is the
/// fast path, and `Auto` routes on a deterministic, structure-independent
/// size heuristic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvalBackend {
    /// The recursive interpreter of [`crate::Sentence::check`].
    Interpreted,
    /// The plan compiler of [`CompiledSentence`] (compiles on entry; use
    /// [`CompiledSentence`] directly to amortize compilation over many
    /// checks).
    Compiled,
    /// Compile when the matrix is large enough to repay lowering,
    /// interpret otherwise. The decision depends only on the sentence
    /// (never on the structure, thread count, or environment), so routing
    /// is deterministic; [`EvalBackend::resolve`] exposes it.
    #[default]
    Auto,
}

/// Matrices at least this many AST nodes large are compiled under
/// [`EvalBackend::Auto`].
const AUTO_COMPILE_MIN_NODES: usize = 8;

impl EvalBackend {
    /// The concrete engine `Auto` routes this sentence to (identity on the
    /// other two variants). Never returns `Auto`.
    pub fn resolve(self, sentence: &Sentence) -> EvalBackend {
        match self {
            EvalBackend::Auto => {
                if sentence.matrix.body().node_count() >= AUTO_COMPILE_MIN_NODES {
                    EvalBackend::Compiled
                } else {
                    EvalBackend::Interpreted
                }
            }
            other => other,
        }
    }
}

impl Sentence {
    /// [`Sentence::check`] through the chosen [`EvalBackend`].
    ///
    /// # Errors
    ///
    /// Exactly those of [`Sentence::check`].
    pub fn check_backend(
        &self,
        s: &Structure,
        nodes: Option<&[ElemId]>,
        opts: &CheckOptions,
        backend: EvalBackend,
    ) -> Result<bool, CheckError> {
        match backend.resolve(self) {
            EvalBackend::Interpreted => self.check(s, nodes, opts),
            _ => CompiledSentence::compile(self).check(s, nodes, opts),
        }
    }

    /// [`Sentence::check_on_graph`] through the chosen [`EvalBackend`].
    ///
    /// # Errors
    ///
    /// Exactly those of [`Sentence::check_on_graph`].
    pub fn check_on_graph_backend(
        &self,
        gs: &GraphStructure,
        opts: &CheckOptions,
        backend: EvalBackend,
    ) -> Result<bool, CheckError> {
        self.check_backend(gs.structure(), Some(gs.node_elems()), opts, backend)
    }
}

/// One lowered plan node. Children are arena indices; variables are dense
/// slot indices assigned at compile time.
///
/// Public for introspection by static verifiers (see `lph-analysis`'s
/// `flow::plan`); the evaluator in this module is the only executor.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum PlanOp {
    /// A folded constant.
    Const(bool),
    /// A unary-relation atom `Rel(x)`.
    Unary {
        /// Unary relation index.
        rel: usize,
        /// First-order slot of the argument.
        x: usize,
    },
    /// A binary-relation atom `Rel(x, y)`.
    Edge {
        /// Binary relation index.
        rel: usize,
        /// First-order slot of the first argument.
        x: usize,
        /// First-order slot of the second argument.
        y: usize,
    },
    /// Equality of two first-order slots.
    Eq(usize, usize),
    /// A second-order atom `X(args…)`.
    App {
        /// Second-order slot (prefix position).
        so: usize,
        /// First-order slots of the arguments.
        args: Vec<usize>,
    },
    /// Negation.
    Not(usize),
    /// Conjunction over child nodes (short-circuit, cheapest-first).
    And(Vec<usize>),
    /// Disjunction over child nodes (short-circuit, cheapest-first).
    Or(Vec<usize>),
    /// Biconditional.
    Iff(usize, usize),
    /// Unbounded `∃x` over the whole domain.
    Exists {
        /// Slot bound by the quantifier.
        slot: usize,
        /// Body node.
        body: usize,
    },
    /// Unbounded `∀x` over the whole domain.
    Forall {
        /// Slot bound by the quantifier.
        slot: usize,
        /// Body node.
        body: usize,
    },
    /// Bounded `∃x ⇌ anchor` over the anchor's Gaifman neighbors.
    ExistsAdj {
        /// Slot bound by the quantifier.
        slot: usize,
        /// Slot of the anchor variable.
        anchor: usize,
        /// Body node.
        body: usize,
    },
    /// Bounded `∀x ⇌ anchor` over the anchor's Gaifman neighbors.
    ForallAdj {
        /// Slot bound by the quantifier.
        slot: usize,
        /// Slot of the anchor variable.
        anchor: usize,
        /// Body node.
        body: usize,
    },
    /// Bounded `∃x ⇌≤r anchor` over the anchor's radius-`r` ball.
    ExistsNear {
        /// Slot bound by the quantifier.
        slot: usize,
        /// Slot of the anchor variable.
        anchor: usize,
        /// Ball radius.
        radius: usize,
        /// Body node.
        body: usize,
    },
    /// Bounded `∀x ⇌≤r anchor` over the anchor's radius-`r` ball.
    ForallNear {
        /// Slot bound by the quantifier.
        slot: usize,
        /// Slot of the anchor variable.
        anchor: usize,
        /// Ball radius.
        radius: usize,
        /// Body node.
        body: usize,
    },
}

/// A [`Sentence`] lowered to an executable plan. Compile once with
/// [`CompiledSentence::compile`], check any number of structures.
#[derive(Debug, Clone)]
pub struct CompiledSentence {
    sentence: Sentence,
    ops: Vec<PlanOp>,
    root: usize,
    /// Slot of the `Lfo` matrix's `∀x` variable, if the matrix is local.
    lfo_slot: Option<usize>,
    fo_slots: usize,
    so_slots: usize,
}

struct Lowerer {
    ops: Vec<PlanOp>,
    costs: Vec<u64>,
    interned: HashMap<PlanOp, usize>,
    fo_slots: HashMap<FoVar, usize>,
    so_slots: HashMap<SoVar, usize>,
}

impl Lowerer {
    /// Interns an op, computing its cost estimate on first sight.
    fn intern(&mut self, op: PlanOp) -> usize {
        if let Some(&id) = self.interned.get(&op) {
            return id;
        }
        let cost = self.cost_of(&op);
        let id = self.ops.len();
        self.ops.push(op.clone());
        self.costs.push(cost);
        self.interned.insert(op, id);
        id
    }

    /// A static cost estimate used only for short-circuit ordering: atoms
    /// cost 1, connectives sum, quantifiers multiply by a nominal range
    /// width (the domain size is unknown at compile time).
    fn cost_of(&self, op: &PlanOp) -> u64 {
        let c = |id: usize| self.costs[id];
        match op {
            PlanOp::Const(_) => 0,
            PlanOp::Unary { .. } | PlanOp::Edge { .. } | PlanOp::Eq(..) => 1,
            PlanOp::App { args, .. } => 1 + args.len() as u64,
            PlanOp::Not(a) => 1 + c(*a),
            PlanOp::And(children) | PlanOp::Or(children) => {
                1 + children.iter().map(|&ch| c(ch)).sum::<u64>()
            }
            PlanOp::Iff(a, b) => 1 + c(*a) + c(*b),
            PlanOp::Exists { body, .. } | PlanOp::Forall { body, .. } => 1 + 8 * c(*body),
            PlanOp::ExistsAdj { body, .. } | PlanOp::ForallAdj { body, .. } => 1 + 4 * c(*body),
            PlanOp::ExistsNear { radius, body, .. } | PlanOp::ForallNear { radius, body, .. } => {
                1 + (2 * *radius as u64 + 2).saturating_mul(c(*body))
            }
        }
        .min(u64::MAX / 4)
    }

    fn fo_slot(&mut self, x: FoVar) -> usize {
        let next = self.fo_slots.len();
        *self.fo_slots.entry(x).or_insert(next)
    }

    fn konst(&mut self, b: bool) -> usize {
        self.intern(PlanOp::Const(b))
    }

    fn as_const(&self, id: usize) -> Option<bool> {
        match self.ops[id] {
            PlanOp::Const(b) => Some(b),
            _ => None,
        }
    }

    fn mk_not(&mut self, a: usize) -> usize {
        if let Some(b) = self.as_const(a) {
            return self.konst(!b);
        }
        if let PlanOp::Not(inner) = self.ops[a] {
            return inner;
        }
        self.intern(PlanOp::Not(a))
    }

    /// Builds an `∧`/`∨` after folding its absorbing/neutral constants,
    /// deduplicating interned children, and stably sorting cheapest-first.
    fn mk_nary(&mut self, or: bool, children: Vec<usize>) -> usize {
        let mut kept = Vec::with_capacity(children.len());
        for ch in children {
            match self.as_const(ch) {
                Some(b) if b == or => return self.konst(or),
                Some(_) => {}
                None => {
                    if !kept.contains(&ch) {
                        kept.push(ch);
                    }
                }
            }
        }
        match kept.len() {
            0 => self.konst(!or),
            1 => kept[0],
            _ => {
                kept.sort_by_key(|&ch| self.costs[ch]);
                self.intern(if or {
                    PlanOp::Or(kept)
                } else {
                    PlanOp::And(kept)
                })
            }
        }
    }

    fn mk_iff(&mut self, a: usize, b: usize) -> usize {
        match (self.as_const(a), self.as_const(b)) {
            (Some(x), Some(y)) => self.konst(x == y),
            (Some(true), None) => b,
            (Some(false), None) => self.mk_not(b),
            (None, Some(true)) => a,
            (None, Some(false)) => self.mk_not(a),
            (None, None) if a == b => self.konst(true),
            _ => self.intern(PlanOp::Iff(a, b)),
        }
    }

    fn lower(&mut self, f: &Formula) -> usize {
        match f {
            Formula::True => self.konst(true),
            Formula::False => self.konst(false),
            Formula::Unary { rel, x } => {
                let x = self.fo_slot(*x);
                self.intern(PlanOp::Unary { rel: *rel, x })
            }
            Formula::Edge { rel, x, y } => {
                let x = self.fo_slot(*x);
                let y = self.fo_slot(*y);
                self.intern(PlanOp::Edge { rel: *rel, x, y })
            }
            Formula::Eq(x, y) => {
                let x = self.fo_slot(*x);
                let y = self.fo_slot(*y);
                if x == y {
                    return self.konst(true);
                }
                self.intern(PlanOp::Eq(x, y))
            }
            Formula::App { rel, args } => {
                let so = self.so_slots[rel];
                let args = args.iter().map(|&a| self.fo_slot(a)).collect();
                self.intern(PlanOp::App { so, args })
            }
            Formula::Not(g) => {
                let a = self.lower(g);
                self.mk_not(a)
            }
            Formula::And(fs) => {
                let children = fs.iter().map(|g| self.lower(g)).collect();
                self.mk_nary(false, children)
            }
            Formula::Or(fs) => {
                let children = fs.iter().map(|g| self.lower(g)).collect();
                self.mk_nary(true, children)
            }
            Formula::Implies(a, b) => {
                let a = self.lower(a);
                let na = self.mk_not(a);
                let b = self.lower(b);
                self.mk_nary(true, vec![na, b])
            }
            Formula::Iff(a, b) => {
                let a = self.lower(a);
                let b = self.lower(b);
                self.mk_iff(a, b)
            }
            Formula::Exists { x, body } => {
                let slot = self.fo_slot(*x);
                let body = self.lower(body);
                // Domains are non-empty (`Structure::new` asserts it), so
                // a constant body decides the quantifier either way.
                match self.as_const(body) {
                    Some(b) => self.konst(b),
                    None => self.intern(PlanOp::Exists { slot, body }),
                }
            }
            Formula::Forall { x, body } => {
                let slot = self.fo_slot(*x);
                let body = self.lower(body);
                match self.as_const(body) {
                    Some(b) => self.konst(b),
                    None => self.intern(PlanOp::Forall { slot, body }),
                }
            }
            Formula::ExistsAdj { x, anchor, body } => {
                let slot = self.fo_slot(*x);
                let anchor = self.fo_slot(*anchor);
                let body = self.lower(body);
                // An element may be isolated, so only `⊥` folds.
                match self.as_const(body) {
                    Some(false) => self.konst(false),
                    _ => self.intern(PlanOp::ExistsAdj { slot, anchor, body }),
                }
            }
            Formula::ForallAdj { x, anchor, body } => {
                let slot = self.fo_slot(*x);
                let anchor = self.fo_slot(*anchor);
                let body = self.lower(body);
                match self.as_const(body) {
                    Some(true) => self.konst(true),
                    _ => self.intern(PlanOp::ForallAdj { slot, anchor, body }),
                }
            }
            Formula::ExistsNear {
                x,
                anchor,
                radius,
                body,
            } => {
                let slot = self.fo_slot(*x);
                let anchor = self.fo_slot(*anchor);
                let body = self.lower(body);
                // A ball always contains its anchor, so both constants fold.
                match self.as_const(body) {
                    Some(b) => self.konst(b),
                    None => self.intern(PlanOp::ExistsNear {
                        slot,
                        anchor,
                        radius: *radius,
                        body,
                    }),
                }
            }
            Formula::ForallNear {
                x,
                anchor,
                radius,
                body,
            } => {
                let slot = self.fo_slot(*x);
                let anchor = self.fo_slot(*anchor);
                let body = self.lower(body);
                match self.as_const(body) {
                    Some(b) => self.konst(b),
                    None => self.intern(PlanOp::ForallNear {
                        slot,
                        anchor,
                        radius: *radius,
                        body,
                    }),
                }
            }
        }
    }
}

impl CompiledSentence {
    /// Lowers a sentence's matrix into an evaluation plan. Second-order
    /// variables are slotted by their position in the quantifier prefix.
    pub fn compile(sentence: &Sentence) -> Self {
        let mut l = Lowerer {
            ops: Vec::new(),
            costs: Vec::new(),
            interned: HashMap::new(),
            fo_slots: HashMap::new(),
            so_slots: sentence
                .flat_quantifiers()
                .iter()
                .enumerate()
                .map(|(i, (_, q))| (q.var, i))
                .collect(),
        };
        let (root, lfo_slot) = match &sentence.matrix {
            Matrix::Lfo { x, body } => {
                let slot = l.fo_slot(*x);
                (l.lower(body), Some(slot))
            }
            Matrix::Fo(f) => (l.lower(f), None),
        };
        CompiledSentence {
            sentence: sentence.clone(),
            so_slots: l.so_slots.len(),
            fo_slots: l.fo_slots.len(),
            ops: l.ops,
            root,
            lfo_slot,
        }
    }

    /// The source sentence.
    pub fn sentence(&self) -> &Sentence {
        &self.sentence
    }

    /// The number of distinct plan nodes after folding and hash-consing
    /// (at most the matrix's [`Formula::node_count`]).
    pub fn plan_len(&self) -> usize {
        self.ops.len()
    }

    /// The hash-consed plan arena, for introspection by static verifiers.
    /// Node `i`'s children are always indices `< i` (the arena is built
    /// bottom-up), so a single forward pass visits children first.
    pub fn ops(&self) -> &[PlanOp] {
        &self.ops
    }

    /// The arena index of the matrix's root node.
    pub fn root(&self) -> usize {
        self.root
    }

    /// The slot of the `Lfo` matrix's implicit `∀°x` variable, if the
    /// matrix is local.
    pub fn lfo_slot(&self) -> Option<usize> {
        self.lfo_slot
    }

    /// The number of dense first-order slots the plan binds.
    pub fn fo_slot_count(&self) -> usize {
        self.fo_slots
    }

    /// The number of second-order slots (prefix positions).
    pub fn so_slot_count(&self) -> usize {
        self.so_slots
    }

    /// Overwrites one arena node with an arbitrary payload. This is a
    /// *mutation hook* for verifier fixtures and demos: it deliberately
    /// performs no validity checks, so the result can (and usually
    /// should) be a plan the static verifier rejects.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn patch_op(&mut self, id: usize, op: PlanOp) {
        self.ops[id] = op;
    }

    /// The compiled counterpart of [`Sentence::check`]: same verdicts,
    /// same errors, on the same inputs.
    ///
    /// # Errors
    ///
    /// Exactly those of [`Sentence::check`].
    pub fn check(
        &self,
        s: &Structure,
        nodes: Option<&[ElemId]>,
        opts: &CheckOptions,
    ) -> Result<bool, CheckError> {
        self.check_with_witness(&[], s, nodes, opts)
    }

    /// The compiled counterpart of [`Sentence::check_on_graph`].
    ///
    /// # Errors
    ///
    /// Exactly those of [`Sentence::check_on_graph`].
    pub fn check_on_graph(
        &self,
        gs: &GraphStructure,
        opts: &CheckOptions,
    ) -> Result<bool, CheckError> {
        self.check(gs.structure(), Some(gs.node_elems()), opts)
    }

    /// The compiled counterpart of [`Sentence::check_with_witness`].
    ///
    /// # Errors
    ///
    /// Exactly those of [`Sentence::check_with_witness`].
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as
    /// [`Sentence::check_with_witness`].
    pub fn check_with_witness(
        &self,
        witnesses: &[Relation],
        s: &Structure,
        nodes: Option<&[ElemId]>,
        opts: &CheckOptions,
    ) -> Result<bool, CheckError> {
        let quants = self.sentence.flat_quantifiers();
        assert!(witnesses.len() <= quants.len(), "too many witnesses");
        for (w, (_, sq)) in witnesses.iter().zip(&quants) {
            assert_eq!(w.arity(), sq.var.arity as usize, "witness arity mismatch");
        }
        let domain = s.elements().count();
        let mut so = vec![SoBind::Unbound; self.so_slots];
        for (i, w) in witnesses.iter().enumerate() {
            so[i] = SoBind::Rel(w);
        }
        // Hoist the remaining universes in prefix order. Observationally
        // identical to the interpreter's lazy computation: its game always
        // recurses at least once per level (mask 0 exists even for empty
        // universes), so every universe is computed before the first
        // matrix evaluation — and thus before any budget error.
        let open = &quants[witnesses.len()..];
        let unis = open
            .iter()
            .map(|(_, sq)| Universe::build(s, nodes, opts, sq, domain))
            .collect::<Result<Vec<_>, _>>()?;
        let mut game = Game {
            ev: Evaluator {
                s,
                ops: &self.ops,
                domain,
                fo: vec![None; self.fo_slots],
                so,
                unis,
                balls: HashMap::new(),
                scratch: Vec::new(),
            },
            root: self.root,
            lfo_slot: self.lfo_slot,
            opts: *opts,
            evals: 0,
            quants: open.iter().map(|&(q, _)| q).collect(),
            witness_count: witnesses.len(),
        };
        game.play(0)
    }
}

/// The hoisted tuple universe of one open quantifier: enough to rank a
/// tuple (mixed-radix over element positions) without materializing the
/// tuple list.
struct Universe {
    /// Number of tuples (`len^k`); the mask space is `2^count`.
    count: usize,
    k: usize,
    len: usize,
    /// `ElemId → position` in the universe's element list
    /// (`u32::MAX` = not in the universe).
    pos: Vec<u32>,
}

impl Universe {
    fn build(
        s: &Structure,
        nodes: Option<&[ElemId]>,
        opts: &CheckOptions,
        q: &SoQuant,
        domain: usize,
    ) -> Result<Universe, CheckError> {
        let elems: Vec<ElemId> = match (q.support, nodes) {
            (Support::NodesOnly, Some(nodes)) => nodes.to_vec(),
            _ => s.elements().collect(),
        };
        let k = q.var.arity as usize;
        let count = elems.len().checked_pow(k as u32).unwrap_or(usize::MAX);
        if count > opts.max_tuples_per_var {
            return Err(CheckError::TooManyTuples {
                var: q.var.to_string(),
                tuples: count,
                limit: opts.max_tuples_per_var,
            });
        }
        let mut pos = vec![u32::MAX; domain];
        for (p, &e) in elems.iter().enumerate() {
            pos[e.0] = p as u32;
        }
        Ok(Universe {
            count,
            k,
            len: elems.len(),
            pos,
        })
    }
}

/// A second-order binding: a game-enumerated mask over a hoisted universe,
/// or a caller-supplied witness relation.
#[derive(Clone)]
enum SoBind<'a> {
    Unbound,
    Mask {
        /// Index into [`Evaluator::unis`].
        uni: usize,
        mask: u64,
    },
    Rel(&'a Relation),
}

struct Evaluator<'a> {
    s: &'a Structure,
    ops: &'a [PlanOp],
    domain: usize,
    fo: Vec<Option<ElemId>>,
    so: Vec<SoBind<'a>>,
    unis: Vec<Universe>,
    /// Gaifman balls memoized per `(element, radius)`; `Rc` so iteration
    /// doesn't hold a borrow across recursive evaluation.
    balls: HashMap<(ElemId, usize), Rc<[ElemId]>>,
    /// Reusable tuple buffer for witness-relation membership tests.
    scratch: Vec<ElemId>,
}

impl Evaluator<'_> {
    fn elem(&self, slot: usize) -> ElemId {
        self.fo[slot].expect("unassigned variable")
    }

    fn ball(&mut self, base: ElemId, radius: usize) -> Rc<[ElemId]> {
        if let Some(b) = self.balls.get(&(base, radius)) {
            return Rc::clone(b);
        }
        let b: Rc<[ElemId]> = self.s.gaifman_ball(base, radius).into();
        self.balls.insert((base, radius), Rc::clone(&b));
        b
    }

    /// Evaluates over a quantifier's element range with save/restore slot
    /// binding (LIFO shadowing for free).
    fn quantify(
        &mut self,
        slot: usize,
        body: usize,
        exists: bool,
        range: impl IntoIterator<Item = ElemId>,
    ) -> bool {
        let saved = self.fo[slot];
        let mut out = !exists;
        for a in range {
            self.fo[slot] = Some(a);
            if self.eval(body) == exists {
                out = exists;
                break;
            }
        }
        self.fo[slot] = saved;
        out
    }

    fn eval(&mut self, id: usize) -> bool {
        // `ops` and `s` are `'a` borrows independent of `&mut self`:
        // copying the references out lets the match arms hold op payloads
        // (child lists, neighbor slices) across recursive calls without
        // cloning anything in the hot path.
        let ops = self.ops;
        let s = self.s;
        match &ops[id] {
            PlanOp::Const(b) => *b,
            PlanOp::Unary { rel, x } => s.in_unary(*rel, self.elem(*x)),
            PlanOp::Edge { rel, x, y } => s.related(*rel, self.elem(*x), self.elem(*y)),
            PlanOp::Eq(x, y) => self.elem(*x) == self.elem(*y),
            PlanOp::App { so, args } => match &self.so[*so] {
                SoBind::Mask { uni, mask } => {
                    let u = &self.unis[*uni];
                    debug_assert_eq!(args.len(), u.k);
                    let mut rank = 0usize;
                    for &a in args {
                        let p = u.pos[self.fo[a].expect("unassigned variable").0];
                        if p == u32::MAX {
                            return false;
                        }
                        rank = rank * u.len + p as usize;
                    }
                    mask >> rank & 1 == 1
                }
                SoBind::Rel(rel) => {
                    let mut tuple = std::mem::take(&mut self.scratch);
                    tuple.clear();
                    for &a in args {
                        tuple.push(self.fo[a].expect("unassigned variable"));
                    }
                    let v = rel.contains(&tuple);
                    self.scratch = tuple;
                    v
                }
                SoBind::Unbound => panic!("unassigned relation variable"),
            },
            PlanOp::Not(a) => !self.eval(*a),
            PlanOp::And(children) => children.iter().all(|&ch| self.eval(ch)),
            PlanOp::Or(children) => children.iter().any(|&ch| self.eval(ch)),
            PlanOp::Iff(a, b) => self.eval(*a) == self.eval(*b),
            PlanOp::Exists { slot, body } => {
                let n = self.domain;
                self.quantify(*slot, *body, true, (0..n).map(ElemId))
            }
            PlanOp::Forall { slot, body } => {
                let n = self.domain;
                self.quantify(*slot, *body, false, (0..n).map(ElemId))
            }
            PlanOp::ExistsAdj { slot, anchor, body } => {
                let base = self.elem(*anchor);
                let nbrs = s.gaifman_neighbors(base);
                self.quantify(*slot, *body, true, nbrs.iter().copied())
            }
            PlanOp::ForallAdj { slot, anchor, body } => {
                let base = self.elem(*anchor);
                let nbrs = s.gaifman_neighbors(base);
                self.quantify(*slot, *body, false, nbrs.iter().copied())
            }
            PlanOp::ExistsNear {
                slot,
                anchor,
                radius,
                body,
            } => {
                let base = self.elem(*anchor);
                let ball = self.ball(base, *radius);
                self.quantify(*slot, *body, true, ball.iter().copied())
            }
            PlanOp::ForallNear {
                slot,
                anchor,
                radius,
                body,
            } => {
                let base = self.elem(*anchor);
                let ball = self.ball(base, *radius);
                self.quantify(*slot, *body, false, ball.iter().copied())
            }
        }
    }
}

struct Game<'a> {
    ev: Evaluator<'a>,
    root: usize,
    lfo_slot: Option<usize>,
    opts: CheckOptions,
    evals: u64,
    /// Quantifier kinds of the open (non-witness) prefix positions.
    quants: Vec<Quantifier>,
    witness_count: usize,
}

impl Game<'_> {
    fn eval_matrix(&mut self) -> Result<bool, CheckError> {
        self.evals += 1;
        if self.evals > self.opts.max_matrix_evals {
            return Err(CheckError::BudgetExceeded {
                limit: self.opts.max_matrix_evals,
            });
        }
        Ok(match self.lfo_slot {
            Some(slot) => {
                let (root, n) = (self.root, self.ev.domain);
                self.ev.quantify(slot, root, false, (0..n).map(ElemId))
            }
            None => self.ev.eval(self.root),
        })
    }

    fn play(&mut self, i: usize) -> Result<bool, CheckError> {
        if i == self.quants.len() {
            return self.eval_matrix();
        }
        let quant = self.quants[i];
        let slot = self.witness_count + i;
        let t = self.ev.unis[i].count;
        debug_assert!(t <= 63);
        for mask in 0u64..(1u64 << t) {
            self.ev.so[slot] = SoBind::Mask { uni: i, mask };
            let sub = self.play(i + 1);
            self.ev.so[slot] = SoBind::Unbound;
            let sub = sub?;
            match quant {
                Quantifier::Exists if sub => return Ok(true),
                Quantifier::Forall if !sub => return Ok(false),
                _ => {}
            }
        }
        Ok(quant == Quantifier::Forall)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::*;
    use crate::examples;
    use crate::sentence::SoBlock;
    use lph_graphs::generators;

    fn assert_same(phi: &Sentence, gs: &GraphStructure, opts: &CheckOptions) {
        let interp = phi.check_on_graph(gs, opts);
        let compiled = CompiledSentence::compile(phi).check_on_graph(gs, opts);
        assert_eq!(interp, compiled, "backends disagree on {phi}");
    }

    #[test]
    fn examples_agree_on_small_graphs() {
        let opts = CheckOptions::default();
        for phi in [
            examples::all_selected(),
            examples::three_colorable(),
            examples::k_colorable(2),
            examples::not_all_selected(),
        ] {
            for g in [
                generators::labeled_cycle(&["1", "1", "1"]),
                generators::labeled_path(&["1", "0"]),
                generators::labeled_cycle(&["1", "0", "1", "1"]),
                generators::star(3),
            ] {
                assert_same(&phi, &GraphStructure::of(&g), &opts);
            }
        }
    }

    #[test]
    fn budget_errors_agree() {
        let x = FoVar(0);
        let big_x = SoVar::set(0);
        let phi = Sentence::new(
            vec![SoBlock {
                quantifier: Quantifier::Exists,
                vars: vec![SoQuant::all(big_x)],
            }],
            Matrix::Fo(forall(x, app(big_x, vec![x]))),
        );
        let g = generators::path(3);
        let gs = GraphStructure::of(&g);
        let opts = CheckOptions {
            max_matrix_evals: 2,
            max_tuples_per_var: 22,
        };
        assert_same(&phi, &gs, &opts);
        assert_eq!(
            CompiledSentence::compile(&phi).check_on_graph(&gs, &opts),
            Err(CheckError::BudgetExceeded { limit: 2 })
        );
    }

    #[test]
    fn tuple_limit_errors_agree() {
        let g = generators::path(5);
        let gs = GraphStructure::of(&g);
        let r = SoVar::binary(0);
        let x = FoVar(0);
        let phi = Sentence::new(
            vec![SoBlock {
                quantifier: Quantifier::Exists,
                vars: vec![SoQuant::all(r)],
            }],
            Matrix::Fo(forall(x, not(app(r, vec![x, x])))),
        );
        assert_same(&phi, &gs, &CheckOptions::default());
    }

    #[test]
    fn witness_checking_agrees() {
        let x = FoVar(0);
        let big_x = SoVar::set(0);
        let phi = Sentence::new(
            vec![SoBlock {
                quantifier: Quantifier::Exists,
                vars: vec![SoQuant::all(big_x)],
            }],
            Matrix::Fo(forall(x, iff(app(big_x, vec![x]), unary(0, x)))),
        );
        let g = generators::labeled_path(&["1", "0"]);
        let gs = GraphStructure::of(&g);
        let s = gs.structure();
        let opts = CheckOptions::default();
        let compiled = CompiledSentence::compile(&phi);
        for w in [Relation::from_set(s.unary_members(0)), Relation::empty(1)] {
            assert_eq!(
                phi.check_with_witness(std::slice::from_ref(&w), s, None, &opts),
                compiled.check_with_witness(&[w], s, None, &opts)
            );
        }
    }

    #[test]
    fn folding_shrinks_the_plan() {
        let (x, y) = (FoVar(0), FoVar(1));
        // (⊤ ∧ ∃y⇌≤1x ⊤) ∧ (x ≐ x) folds to ⊤ entirely.
        let body = and(vec![
            and(vec![Formula::True, exists_near(y, x, 1, Formula::True)]),
            eq(x, x),
        ]);
        let phi = Sentence::lfo(x, body);
        let compiled = CompiledSentence::compile(&phi);
        assert_eq!(compiled.plan_len(), 1);
        let g = generators::path(2);
        assert_same(&phi, &GraphStructure::of(&g), &CheckOptions::default());
    }

    #[test]
    fn hash_consing_dedups_repeated_subformulas() {
        let x = FoVar(0);
        let atom = || exists_adj(FoVar(1), x, unary(0, FoVar(1)));
        let phi = Sentence::lfo(x, or(vec![atom(), atom(), not(not(atom()))]));
        let compiled = CompiledSentence::compile(&phi);
        // ∨ dedups to the single interned subformula (¬¬ cancels; its inner
        // ¬ stays in the arena as a dead interned node): the 10-node matrix
        // lowers to atom + quantifier + the dead ¬.
        assert!(
            compiled.plan_len() <= 3,
            "plan has {} nodes",
            compiled.plan_len()
        );
        let g = generators::labeled_path(&["1", "0", "1"]);
        assert_same(&phi, &GraphStructure::of(&g), &CheckOptions::default());
    }

    #[test]
    fn adj_quantifiers_do_not_fold_on_isolated_elements() {
        // On a single node with no incident edges (and one label bit, so
        // the node element *does* have a Gaifman neighbor — use radius
        // semantics instead: check both polarities against the oracle).
        let (x, y) = (FoVar(0), FoVar(1));
        for body in [
            exists_adj(y, x, Formula::True),
            forall_adj(y, x, Formula::False),
        ] {
            let phi = Sentence::lfo(x, body);
            let compiled = CompiledSentence::compile(&phi);
            assert!(compiled.plan_len() > 1, "{phi} must not fold");
            for g in [generators::path(2), generators::star(3)] {
                assert_same(&phi, &GraphStructure::of(&g), &CheckOptions::default());
            }
        }
    }

    #[test]
    fn auto_routing_is_deterministic_and_size_based() {
        let x = FoVar(0);
        let small = Sentence::lfo(x, unary(0, x));
        let big = examples::three_colorable();
        assert_eq!(EvalBackend::Auto.resolve(&small), EvalBackend::Interpreted);
        assert_eq!(EvalBackend::Auto.resolve(&big), EvalBackend::Compiled);
        assert_eq!(
            EvalBackend::Interpreted.resolve(&big),
            EvalBackend::Interpreted
        );
        assert_eq!(EvalBackend::Compiled.resolve(&small), EvalBackend::Compiled);
    }

    #[test]
    fn backend_entry_points_agree() {
        let phi = examples::three_colorable();
        let g = generators::cycle(4);
        let gs = GraphStructure::of(&g);
        let opts = CheckOptions::default();
        let want = phi.check_on_graph(&gs, &opts);
        for backend in [
            EvalBackend::Interpreted,
            EvalBackend::Compiled,
            EvalBackend::Auto,
        ] {
            assert_eq!(phi.check_on_graph_backend(&gs, &opts, backend), want);
        }
    }
}
