//! Second-order model checking by exhaustive game search.
//!
//! A sentence `Q₁R₁ … Q_nR_n M` is checked by playing the Eve/Adam game
//! over relation interpretations: existential variables try all candidates
//! until one makes the rest true, universal ones until one makes the rest
//! false. Candidate relations are enumerated as subsets of a *tuple
//! universe* determined by each variable's [`Support`] hint.
//!
//! This is inherently exponential — it is the semantics, not an algorithm —
//! so the checker carries an explicit work budget and errors out instead of
//! silently running forever. For larger instances, the workspace's
//! certificate games (`lph-core`) and compiled arbiters (`lph-fagin`)
//! provide the operational route the paper actually takes.

use std::error::Error;
use std::fmt;

use lph_graphs::{ElemId, GraphStructure, Structure};

use crate::sentence::{Matrix, Quantifier, Sentence, SoQuant, Support};
use crate::var::{Assignment, Relation};

/// Budget and size limits for [`Sentence::check`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckOptions {
    /// Maximum number of matrix evaluations before giving up.
    pub max_matrix_evals: u64,
    /// Maximum size of a single variable's tuple universe (the relation
    /// space is `2^tuples`).
    pub max_tuples_per_var: usize,
}

impl Default for CheckOptions {
    fn default() -> Self {
        CheckOptions {
            max_matrix_evals: 5_000_000,
            max_tuples_per_var: 22,
        }
    }
}

/// Why a check could not be completed.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CheckError {
    /// A variable's tuple universe exceeded
    /// [`CheckOptions::max_tuples_per_var`].
    TooManyTuples {
        /// Display form of the offending variable.
        var: String,
        /// Size of its tuple universe.
        tuples: usize,
        /// The configured limit.
        limit: usize,
    },
    /// The matrix-evaluation budget was exhausted.
    BudgetExceeded {
        /// The configured budget.
        limit: u64,
    },
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckError::TooManyTuples { var, tuples, limit } => write!(
                f,
                "relation variable {var} ranges over {tuples} tuples (limit {limit}); \
                 the relation space is too large for exhaustive checking"
            ),
            CheckError::BudgetExceeded { limit } => {
                write!(f, "exceeded the budget of {limit} matrix evaluations")
            }
        }
    }
}

impl Error for CheckError {}

struct Ctx<'a> {
    s: &'a Structure,
    nodes: Option<&'a [ElemId]>,
    opts: CheckOptions,
    evals: u64,
    quants: Vec<(Quantifier, SoQuant)>,
}

impl Ctx<'_> {
    fn universe(&self, q: &SoQuant) -> Result<Vec<Vec<ElemId>>, CheckError> {
        let elems: Vec<ElemId> = match (q.support, self.nodes) {
            (Support::NodesOnly, Some(nodes)) => nodes.to_vec(),
            _ => self.s.elements().collect(),
        };
        let k = q.var.arity as usize;
        let count = elems.len().checked_pow(k as u32).unwrap_or(usize::MAX);
        if count > self.opts.max_tuples_per_var {
            return Err(CheckError::TooManyTuples {
                var: q.var.to_string(),
                tuples: count,
                limit: self.opts.max_tuples_per_var,
            });
        }
        // Enumerate elems^k in mixed-radix order.
        let mut out = Vec::with_capacity(count);
        let mut idx = vec![0usize; k];
        loop {
            out.push(idx.iter().map(|&i| elems[i]).collect());
            let mut pos = k;
            loop {
                if pos == 0 {
                    return Ok(out);
                }
                pos -= 1;
                idx[pos] += 1;
                if idx[pos] < elems.len() {
                    break;
                }
                idx[pos] = 0;
            }
        }
    }

    fn eval_matrix(&mut self, m: &Matrix, sigma: &mut Assignment) -> Result<bool, CheckError> {
        self.evals += 1;
        if self.evals > self.opts.max_matrix_evals {
            return Err(CheckError::BudgetExceeded {
                limit: self.opts.max_matrix_evals,
            });
        }
        Ok(match m {
            Matrix::Lfo { x, body } => self.s.elements().all(|a| {
                sigma.push_fo(*x, a);
                let v = body.eval(self.s, sigma);
                sigma.pop_fo();
                v
            }),
            Matrix::Fo(f) => f.eval(self.s, sigma),
        })
    }

    fn game(&mut self, i: usize, m: &Matrix, sigma: &mut Assignment) -> Result<bool, CheckError> {
        if i == self.quants.len() {
            return self.eval_matrix(m, sigma);
        }
        let (quant, sq) = self.quants[i];
        let universe = self.universe(&sq)?;
        let t = universe.len();
        debug_assert!(t <= 63);
        for mask in 0u64..(1u64 << t) {
            let rel = Relation::from_tuples(
                sq.var.arity as usize,
                (0..t)
                    .filter(|j| mask >> j & 1 == 1)
                    .map(|j| universe[j].clone()),
            );
            sigma.push_so(sq.var, rel);
            let sub = self.game(i + 1, m, sigma);
            sigma.pop_so();
            let sub = sub?;
            match quant {
                Quantifier::Exists if sub => return Ok(true),
                Quantifier::Forall if !sub => return Ok(false),
                _ => {}
            }
        }
        Ok(quant == Quantifier::Forall)
    }
}

impl Sentence {
    /// Checks the sentence on a structure. `nodes`, when given, is the
    /// element set used for [`Support::NodesOnly`] variables (without it
    /// they fall back to the full domain).
    ///
    /// # Errors
    ///
    /// Returns [`CheckError`] when the search space or budget limits are
    /// exceeded.
    pub fn check(
        &self,
        s: &Structure,
        nodes: Option<&[ElemId]>,
        opts: &CheckOptions,
    ) -> Result<bool, CheckError> {
        let mut ctx = Ctx {
            s,
            nodes,
            opts: *opts,
            evals: 0,
            quants: self.flat_quantifiers(),
        };
        ctx.game(0, &self.matrix, &mut Assignment::new())
    }

    /// Checks the sentence on a graph's structural representation, using
    /// the graph's node elements for [`Support::NodesOnly`] variables.
    ///
    /// # Errors
    ///
    /// Returns [`CheckError`] when the search space or budget limits are
    /// exceeded.
    pub fn check_on_graph(
        &self,
        gs: &GraphStructure,
        opts: &CheckOptions,
    ) -> Result<bool, CheckError> {
        self.check(gs.structure(), Some(gs.node_elems()), opts)
    }

    /// Checks the sentence with the relations of the *first* quantified
    /// variables fixed to the given witness interpretations (in prefix
    /// order), quantifying only over the rest. Used to validate the
    /// constructive Eve strategies described in the paper's Examples 4–7 on
    /// instances too large for a full game search.
    ///
    /// # Errors
    ///
    /// Returns [`CheckError`] on budget/size limits.
    ///
    /// # Panics
    ///
    /// Panics if more witnesses than quantified variables are supplied or a
    /// witness arity mismatches its variable.
    pub fn check_with_witness(
        &self,
        witnesses: &[Relation],
        s: &Structure,
        nodes: Option<&[ElemId]>,
        opts: &CheckOptions,
    ) -> Result<bool, CheckError> {
        let quants = self.flat_quantifiers();
        assert!(witnesses.len() <= quants.len(), "too many witnesses");
        let mut sigma = Assignment::new();
        for (w, (_, sq)) in witnesses.iter().zip(&quants) {
            assert_eq!(w.arity(), sq.var.arity as usize, "witness arity mismatch");
            sigma.push_so(sq.var, w.clone());
        }
        let mut ctx = Ctx {
            s,
            nodes,
            opts: *opts,
            evals: 0,
            quants: quants[witnesses.len()..].to_vec(),
        };
        ctx.game(0, &self.matrix, &mut sigma)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::*;
    use crate::sentence::SoBlock;
    use crate::var::{FoVar, SoVar};
    use lph_graphs::generators;

    /// `∃X ∀x (X(x) ↔ ⊙₁x)` — trivially true: Eve picks X = the 1-bits.
    fn exists_matching_set() -> Sentence {
        let x = FoVar(0);
        let big_x = SoVar::set(0);
        Sentence::new(
            vec![SoBlock {
                quantifier: Quantifier::Exists,
                vars: vec![SoQuant::all(big_x)],
            }],
            Matrix::Fo(forall(x, iff(app(big_x, vec![x]), unary(0, x)))),
        )
    }

    /// `∀X ∃x X(x)` — false: Adam picks X = ∅.
    fn forall_nonempty() -> Sentence {
        let x = FoVar(0);
        let big_x = SoVar::set(0);
        Sentence::new(
            vec![SoBlock {
                quantifier: Quantifier::Forall,
                vars: vec![SoQuant::all(big_x)],
            }],
            Matrix::Fo(exists(x, app(big_x, vec![x]))),
        )
    }

    #[test]
    fn existential_witness_is_found() {
        let g = generators::labeled_path(&["1", "0", "1"]);
        let s = lph_graphs::GraphStructure::of(&g);
        assert!(exists_matching_set()
            .check(s.structure(), None, &CheckOptions::default())
            .unwrap());
    }

    #[test]
    fn universal_counterexample_is_found() {
        let g = generators::path(2);
        let s = lph_graphs::GraphStructure::of(&g);
        assert!(!forall_nonempty()
            .check(s.structure(), None, &CheckOptions::default())
            .unwrap());
    }

    #[test]
    fn alternation_order_matters() {
        // ∃X ∀x (X(x) ↔ ⊙₁x) is true, but ∀X ∃x ¬(X(x) ↔ ⊙₁x) is its
        // negation-ish dual and must be false on any structure (Adam cannot
        // beat the matching set — wait, Adam *picks* X here, so he picks the
        // matching set and the ∃x fails).
        let x = FoVar(0);
        let big_x = SoVar::set(0);
        let dual = Sentence::new(
            vec![SoBlock {
                quantifier: Quantifier::Forall,
                vars: vec![SoQuant::all(big_x)],
            }],
            Matrix::Fo(exists(x, not(iff(app(big_x, vec![x]), unary(0, x))))),
        );
        let g = generators::labeled_path(&["1", "0"]);
        let s = lph_graphs::GraphStructure::of(&g);
        assert!(!dual
            .check(s.structure(), None, &CheckOptions::default())
            .unwrap());
    }

    #[test]
    fn nodes_only_support_shrinks_the_universe() {
        // ∃X (∀x: X(x) → IsNode(x)) ∧ (∀x: IsNode(x) → X(x)): with
        // NodesOnly support the witness is the full node set.
        let x = FoVar(0);
        let aux = FoVar(1);
        let big_x = SoVar::set(0);
        let phi = Sentence::new(
            vec![SoBlock::exists(vec![big_x])],
            Matrix::Fo(forall(x, iff(app(big_x, vec![x]), is_node(x, aux)))),
        );
        let g = generators::labeled_path(&["101", "11"]);
        let gs = lph_graphs::GraphStructure::of(&g);
        assert!(phi.check_on_graph(&gs, &CheckOptions::default()).unwrap());
    }

    #[test]
    fn budget_is_enforced() {
        // ∃X ∀x X(x): the only witness is the full set, which mask-order
        // enumeration reaches last — so a budget of 2 evals must trip.
        let x = FoVar(0);
        let big_x = SoVar::set(0);
        let phi = Sentence::new(
            vec![SoBlock {
                quantifier: Quantifier::Exists,
                vars: vec![SoQuant::all(big_x)],
            }],
            Matrix::Fo(forall(x, app(big_x, vec![x]))),
        );
        let g = generators::path(3);
        let s = lph_graphs::GraphStructure::of(&g);
        let opts = CheckOptions {
            max_matrix_evals: 2,
            max_tuples_per_var: 22,
        };
        let err = phi.check(s.structure(), None, &opts).unwrap_err();
        assert_eq!(err, CheckError::BudgetExceeded { limit: 2 });
    }

    #[test]
    fn tuple_limit_is_enforced() {
        let g = generators::path(5); // 10 elements with labels
        let s = lph_graphs::GraphStructure::of(&g);
        let r = SoVar::binary(0);
        let x = FoVar(0);
        let phi = Sentence::new(
            vec![SoBlock {
                quantifier: Quantifier::Exists,
                vars: vec![SoQuant::all(r)],
            }],
            Matrix::Fo(forall(x, not(app(r, vec![x, x])))),
        );
        let err = phi
            .check(s.structure(), None, &CheckOptions::default())
            .unwrap_err();
        assert!(matches!(err, CheckError::TooManyTuples { .. }));
    }

    #[test]
    fn witness_checking_fixes_outer_relations() {
        let g = generators::labeled_path(&["1", "0"]);
        let s = lph_graphs::GraphStructure::of(&g);
        let phi = exists_matching_set();
        // Correct witness: exactly the 1-bits.
        let ones = Relation::from_set(s.structure().unary_members(0));
        assert!(phi
            .check_with_witness(&[ones], s.structure(), None, &CheckOptions::default())
            .unwrap());
        // Wrong witness: empty set (there is a 1-bit, so the ↔ fails).
        let empty = Relation::empty(1);
        assert!(!phi
            .check_with_witness(&[empty], s.structure(), None, &CheckOptions::default())
            .unwrap());
    }

    #[test]
    fn empty_prefix_is_plain_fo_checking() {
        let x = FoVar(0);
        let phi = Sentence::new(vec![], Matrix::Fo(exists(x, unary(0, x))));
        let g = generators::labeled_path(&["0", "1"]);
        let s = lph_graphs::GraphStructure::of(&g);
        assert!(phi
            .check(s.structure(), None, &CheckOptions::default())
            .unwrap());
        let g = generators::labeled_path(&["0", "0"]);
        let s = lph_graphs::GraphStructure::of(&g);
        assert!(!phi
            .check(s.structure(), None, &CheckOptions::default())
            .unwrap());
    }
}
