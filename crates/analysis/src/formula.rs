//! Static checks over [`Sentence`] artifacts (rules `FRM001`–`FRM005`).
//!
//! `Sentence::new` already rejects structurally ill-formed sentences
//! (unbound variables, non-BF `LFO` matrices); the rules here catch the
//! mistakes that are *well-formed but wrong*: dead binders, shadowing,
//! atoms outside the declared signature, and claims (hierarchy level,
//! locality, monadicity) that disagree with what the syntax actually says.

use std::collections::BTreeSet;

use lph_logic::{FoVar, Formula, Matrix, Sentence};

use crate::diagnostic::Diagnostic;

/// A sentence plus the author's claims about it.
pub struct SentenceArtifact {
    /// Corpus name (diagnostics are reported against `sentence:<name>`).
    pub name: String,
    /// The sentence.
    pub sentence: Sentence,
    /// Claimed level in the (local) second-order hierarchy, in the
    /// [`lph_logic::Level`] display syntax (`"Σ0 = Π0"`, `"Σ2"`, `"Π4"`, …).
    pub claimed_level: String,
    /// Claimed to be in the *local* hierarchy (`LFO` matrix).
    pub claimed_local: bool,
    /// Claimed to use only monadic (set) second-order variables.
    pub claimed_monadic: bool,
    /// The structure signature the sentence is written against:
    /// `(unary relation count, binary relation count)`.
    pub signature: (usize, usize),
    /// Claimed visibility radius of the matrix, if the author states one
    /// (checked by `FRM007` against the variable-flow radius).
    pub claimed_radius: Option<usize>,
}

impl SentenceArtifact {
    /// Wraps a sentence with its claims, defaulting to the graph
    /// structural-representation signature (1 unary, 2 binary).
    pub fn new(name: &str, sentence: Sentence, claimed_level: &str) -> Self {
        SentenceArtifact {
            name: name.to_owned(),
            claimed_local: sentence.is_local(),
            claimed_monadic: false,
            sentence,
            claimed_level: claimed_level.to_owned(),
            signature: (1, 2),
            claimed_radius: None,
        }
    }

    /// Adds a claimed visibility radius.
    #[must_use]
    pub fn with_radius(mut self, r: usize) -> Self {
        self.claimed_radius = Some(r);
        self
    }

    /// Marks the sentence as claimed monadic.
    #[must_use]
    pub fn monadic(mut self) -> Self {
        self.claimed_monadic = true;
        self
    }

    /// Overrides the claimed-local flag (the constructor defaults it to
    /// the sentence's actual shape).
    #[must_use]
    pub fn claim_local(mut self, local: bool) -> Self {
        self.claimed_local = local;
        self
    }

    /// Overrides the declared signature.
    #[must_use]
    pub fn with_signature(mut self, unary: usize, binary: usize) -> Self {
        self.signature = (unary, binary);
        self
    }

    pub(crate) fn artifact(&self) -> String {
        format!("sentence:{}", self.name)
    }
}

/// Calls `f` on every first-order binder `(x, body)` in `φ`, passing the
/// set of variables already in scope at that binder.
fn walk_binders(
    phi: &Formula,
    scope: &mut Vec<FoVar>,
    f: &mut impl FnMut(FoVar, &Formula, &[FoVar]),
) {
    match phi {
        Formula::True
        | Formula::False
        | Formula::Unary { .. }
        | Formula::Edge { .. }
        | Formula::Eq(..)
        | Formula::App { .. } => {}
        Formula::Not(g) => walk_binders(g, scope, f),
        Formula::And(gs) | Formula::Or(gs) => {
            for g in gs {
                walk_binders(g, scope, f);
            }
        }
        Formula::Implies(a, b) | Formula::Iff(a, b) => {
            walk_binders(a, scope, f);
            walk_binders(b, scope, f);
        }
        Formula::Exists { x, body }
        | Formula::Forall { x, body }
        | Formula::ExistsAdj { x, body, .. }
        | Formula::ForallAdj { x, body, .. }
        | Formula::ExistsNear { x, body, .. }
        | Formula::ForallNear { x, body, .. } => {
            f(*x, body, scope);
            scope.push(*x);
            walk_binders(body, scope, f);
            scope.pop();
        }
    }
}

/// `FRM001` — unused quantified variables: a first- or second-order binder
/// whose variable never occurs in its body is dead syntax.
pub fn check_unused(a: &SentenceArtifact) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let used_so = a.sentence.matrix.body().so_vars();
    for block in &a.sentence.blocks {
        for q in &block.vars {
            if !used_so.contains(&q.var) {
                out.push(
                    Diagnostic::warning(
                        "FRM001",
                        a.artifact(),
                        format!(
                            "second-order variable {} is quantified but never used",
                            q.var
                        ),
                    )
                    .with_suggestion("drop the variable from its block"),
                );
            }
        }
    }
    let mut scope = Vec::new();
    if let Matrix::Lfo { x, body } = &a.sentence.matrix {
        if !body.free_fo().contains(x) {
            out.push(Diagnostic::warning(
                "FRM001",
                a.artifact(),
                format!("the LFO quantifier ∀{x} never uses {x} in its body"),
            ));
        }
        scope.push(*x);
    }
    walk_binders(a.sentence.matrix.body(), &mut scope, &mut |x, body, _| {
        if !body.free_fo().contains(&x) {
            out.push(
                Diagnostic::warning(
                    "FRM001",
                    a.artifact(),
                    format!("first-order variable {x} is quantified but never used"),
                )
                .with_suggestion("remove the quantifier or use the variable"),
            );
        }
    });
    out
}

/// `FRM002` — shadowed variables: a binder re-using a variable already in
/// scope makes the outer occurrence unreachable inside the body.
pub fn check_shadowing(a: &SentenceArtifact) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut scope = Vec::new();
    if let Matrix::Lfo { x, .. } = &a.sentence.matrix {
        scope.push(*x);
    }
    walk_binders(a.sentence.matrix.body(), &mut scope, &mut |x, _, scope| {
        if scope.contains(&x) {
            out.push(
                Diagnostic::warning(
                    "FRM002",
                    a.artifact(),
                    format!("quantifier shadows the outer binding of {x}"),
                )
                .with_suggestion("pick a fresh variable (e.g. via VarPool)"),
            );
        }
    });
    out
}

/// Collects every `(unary rel, binary rel)` index mentioned by atoms.
fn atom_rels(phi: &Formula, unary: &mut BTreeSet<usize>, binary: &mut BTreeSet<usize>) {
    match phi {
        Formula::True | Formula::False | Formula::Eq(..) | Formula::App { .. } => {}
        Formula::Unary { rel, .. } => {
            unary.insert(*rel);
        }
        Formula::Edge { rel, .. } => {
            binary.insert(*rel);
        }
        Formula::Not(g) => atom_rels(g, unary, binary),
        Formula::And(gs) | Formula::Or(gs) => {
            for g in gs {
                atom_rels(g, unary, binary);
            }
        }
        Formula::Implies(a, b) | Formula::Iff(a, b) => {
            atom_rels(a, unary, binary);
            atom_rels(b, unary, binary);
        }
        Formula::Exists { body, .. }
        | Formula::Forall { body, .. }
        | Formula::ExistsAdj { body, .. }
        | Formula::ForallAdj { body, .. }
        | Formula::ExistsNear { body, .. }
        | Formula::ForallNear { body, .. } => atom_rels(body, unary, binary),
    }
}

/// `FRM003` — signature mismatch: atoms referring to relations outside the
/// declared `(unary, binary)` signature evaluate against nothing, and two
/// quantified relation variables sharing an index with different arities
/// are almost certainly a mix-up of `SoVar::set` / `SoVar::binary`.
pub fn check_signature(a: &SentenceArtifact) -> Vec<Diagnostic> {
    let (unary_count, binary_count) = a.signature;
    let mut unary = BTreeSet::new();
    let mut binary = BTreeSet::new();
    atom_rels(a.sentence.matrix.body(), &mut unary, &mut binary);
    let mut out = Vec::new();
    for rel in unary {
        if rel >= unary_count {
            out.push(Diagnostic::error(
                "FRM003",
                a.artifact(),
                format!(
                    "unary atom ⊙_{} is outside the declared signature ({unary_count} unary)",
                    rel + 1,
                ),
            ));
        }
    }
    for rel in binary {
        if rel >= binary_count {
            out.push(Diagnostic::error(
                "FRM003",
                a.artifact(),
                format!(
                    "binary atom ⇀_{} is outside the declared signature ({binary_count} binary)",
                    rel + 1,
                ),
            ));
        }
    }
    let quantified: Vec<_> = a.sentence.flat_quantifiers();
    for (i, (_, qi)) in quantified.iter().enumerate() {
        for (_, qj) in &quantified[i + 1..] {
            if qi.var.index == qj.var.index && qi.var.arity != qj.var.arity {
                out.push(
                    Diagnostic::warning(
                        "FRM003",
                        a.artifact(),
                        format!(
                            "second-order index {} is quantified at arities {} and {}",
                            qi.var.index, qi.var.arity, qj.var.arity,
                        ),
                    )
                    .with_suggestion("allocate distinct indices per variable (see VarPool)"),
                );
            }
        }
    }
    out
}

/// `FRM004` — claimed level / fragment mismatch: the declared `Σℓ`/`Πℓ`
/// level must equal the recomputed minimal syntactic level, and the
/// locality claim must match the matrix shape. An empty quantifier block
/// is also flagged — it silently changes how adjacent blocks merge.
pub fn check_level(a: &SentenceArtifact) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let actual = a.sentence.level().to_string();
    if actual != a.claimed_level {
        out.push(
            Diagnostic::error(
                "FRM004",
                a.artifact(),
                format!(
                    "claimed level {} but the prefix computes to {actual}",
                    a.claimed_level
                ),
            )
            .with_suggestion("fix the claim, or restructure the quantifier prefix"),
        );
    }
    if a.claimed_local != a.sentence.is_local() {
        let (claim, is) = if a.claimed_local {
            ("LFO", "FO")
        } else {
            ("FO", "LFO")
        };
        out.push(Diagnostic::error(
            "FRM004",
            a.artifact(),
            format!("claimed an {claim} matrix but the matrix is {is}"),
        ));
    }
    for block in &a.sentence.blocks {
        if block.vars.is_empty() {
            out.push(Diagnostic::warning(
                "FRM004",
                a.artifact(),
                "empty second-order quantifier block in the prefix",
            ));
        }
    }
    out
}

/// `FRM005` — monadicity: a sentence claimed to live in `mΣℓ`/`mΠℓ`
/// (Section 9.2) must quantify only set variables; conversely a sentence
/// that *is* monadic but not claimed so could advertise the stronger
/// fragment.
pub fn check_monadic(a: &SentenceArtifact) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if a.claimed_monadic && !a.sentence.is_monadic() {
        let offender = a
            .sentence
            .flat_quantifiers()
            .into_iter()
            .find(|(_, q)| q.var.arity != 1)
            .map(|(_, q)| q.var);
        let detail = offender.map_or(String::new(), |v| format!(" ({v} has arity {})", v.arity));
        out.push(
            Diagnostic::error(
                "FRM005",
                a.artifact(),
                format!("claimed monadic but quantifies a non-unary relation variable{detail}"),
            )
            .with_suggestion("drop the monadicity claim or re-encode with set variables"),
        );
    }
    if !a.claimed_monadic && a.sentence.is_monadic() && !a.sentence.blocks.is_empty() {
        out.push(Diagnostic::note(
            "FRM005",
            a.artifact(),
            "sentence is monadic but not claimed so; it lives in the mΣℓ/mΠℓ fragment",
        ));
    }
    out
}

/// Runs every formula rule over one artifact.
pub fn check_all(a: &SentenceArtifact) -> Vec<Diagnostic> {
    let mut out = check_unused(a);
    out.extend(check_shadowing(a));
    out.extend(check_signature(a));
    out.extend(check_level(a));
    out.extend(check_monadic(a));
    out
}
