//! A minimal JSON value type with an emitter and a recursive-descent
//! parser.
//!
//! The workspace builds in hermetic environments where `serde_json` cannot
//! be resolved, so `lph-lint --format json` is backed by this module. The
//! grammar is full JSON (objects, arrays, strings with escapes, integers,
//! floats, booleans, null); the emitter produces deterministic output
//! (object keys keep insertion order) so diagnostics serialize stably.

use std::fmt;

use crate::diagnostic::{Diagnostic, Severity};

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number (emitted without trailing `.0` when integral).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, preserving insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.emit())
    }
}

impl Json {
    /// Serializes the value to compact JSON text.
    pub fn emit(&self) -> String {
        let mut out = String::new();
        self.emit_into(&mut out);
        out
    }

    fn emit_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    out.push_str(&format!("{}", *n as i64));
                } else {
                    out.push_str(&format!("{n}"));
                }
            }
            Json::Str(s) => escape_into(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.emit_into(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(out, k);
                    out.push(':');
                    v.emit_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses JSON text.
    ///
    /// # Errors
    ///
    /// Returns a description of the first syntax error, with its byte
    /// offset.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing input at byte {}", p.pos));
        }
        Ok(v)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "non-utf8 number".to_owned())?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number {text:?} at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                            out.push(char::from_u32(cp).ok_or(format!("invalid codepoint {cp}"))?);
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "non-utf8 string".to_owned())?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

/// Serializes diagnostics as a JSON array of objects with keys
/// `code`, `severity`, `artifact`, `message`, `suggestion`.
pub fn diagnostics_to_json(diags: &[Diagnostic]) -> Json {
    Json::Arr(
        diags
            .iter()
            .map(|d| {
                Json::Obj(vec![
                    ("code".into(), Json::Str(d.code.clone())),
                    ("severity".into(), Json::Str(d.severity.as_str().into())),
                    ("artifact".into(), Json::Str(d.artifact.clone())),
                    ("message".into(), Json::Str(d.message.clone())),
                    (
                        "suggestion".into(),
                        d.suggestion.clone().map_or(Json::Null, Json::Str),
                    ),
                ])
            })
            .collect(),
    )
}

/// Parses a diagnostics array produced by [`diagnostics_to_json`] back into
/// diagnostics — the round-trip direction used by the self-tests and by
/// tooling consuming `lph-lint --format json`.
///
/// # Errors
///
/// Returns a description of the first structural mismatch.
pub fn diagnostics_from_json(v: &Json) -> Result<Vec<Diagnostic>, String> {
    let items = v.as_arr().ok_or("expected a JSON array of diagnostics")?;
    items
        .iter()
        .enumerate()
        .map(|(i, item)| {
            let field = |k: &str| -> Result<String, String> {
                item.get(k)
                    .and_then(Json::as_str)
                    .map(str::to_owned)
                    .ok_or(format!("diagnostic {i}: missing string field {k:?}"))
            };
            let severity = Severity::parse(&field("severity")?)
                .ok_or(format!("diagnostic {i}: unknown severity"))?;
            let suggestion = match item.get("suggestion") {
                None | Some(Json::Null) => None,
                Some(Json::Str(s)) => Some(s.clone()),
                Some(_) => return Err(format!("diagnostic {i}: bad suggestion type")),
            };
            Ok(Diagnostic {
                code: field("code")?,
                severity,
                artifact: field("artifact")?,
                message: field("message")?,
                suggestion,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in [
            "null", "true", "false", "0", "-17", "3.5", "\"hi\"", "[]", "{}",
        ] {
            let v = Json::parse(text).unwrap();
            assert_eq!(v.emit(), text, "{text}");
        }
    }

    #[test]
    fn escapes_round_trip() {
        let v = Json::Str("a\"b\\c\nd\te — ü".into());
        let back = Json::parse(&v.emit()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(Json::parse(r#""é""#).unwrap(), Json::Str("é".into()));
    }

    #[test]
    fn nested_structures_round_trip() {
        let text = r#"{"a":[1,2,{"b":null}],"c":"x","d":true}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.emit(), text);
        assert_eq!(v.get("c").and_then(Json::as_str), Some("x"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("nul").is_err());
        assert!(Json::parse("[1,").is_err());
        assert!(Json::parse("{\"a\" 1}").is_err());
        assert!(Json::parse("1 2").is_err());
    }

    #[test]
    fn diagnostics_round_trip() {
        let diags = vec![
            Diagnostic::error("DTM001", "dtm:echo", "missing transition"),
            Diagnostic::warning("FRM004", "sentence:x", "claimed Σ2, computed Σ1")
                .with_suggestion("fix the claim"),
        ];
        let json = diagnostics_to_json(&diags);
        let reparsed = Json::parse(&json.emit()).unwrap();
        assert_eq!(reparsed, json);
        assert_eq!(diagnostics_from_json(&reparsed).unwrap(), diags);
    }
}
