//! Structural validation of `lph-serve/1` wire documents — the
//! newline-delimited JSON protocol of the `lph-serve` query service — on
//! the workspace's own [`Json`] type.
//!
//! Like [`crate::tracefmt`], this module is the schema authority: the
//! serve crate emits and parses lines, and this validator re-checks the
//! shapes from first principles so tooling (tests, `bench-gate`-style
//! validators, transcript replays) can reject drift without depending on
//! the serve crate. One JSON object per line; request shapes:
//!
//! ```json
//! {"id":"r1","kind":"membership","arbiter":"eulerian_decider",
//!  "graph":{"family":"cycle","n":6},"level":0,"backend":"auto",
//!  "exec":"compiled"}
//! {"id":"r2","kind":"lint","target":"arbiter:two_colorable_verifier",
//!  "graph":{"labels":["1","1","1"],"edges":[[0,1],[1,2],[2,0]]}}
//! {"id":"r3","kind":"reduction","reduction":"all_selected_to_eulerian",
//!  "graph":{"family":"cycle","n":3}}
//! {"id":"r4","kind":"list"}
//! ```
//!
//! Response lines echo the request `id` (or `null` when the request line
//! was unparseable) and are either `"ok":true` with kind-specific payload
//! fields or `"ok":false` with an `"error"` object whose `"code"` is one
//! of [`SERVE_ERROR_CODES`]. `PROTOCOL.md` is the human-readable spec;
//! its transcripts are replayed against a live server by the `serve` CI
//! stage.

use crate::json::Json;

/// The wire-protocol schema name/version.
pub const SERVE_SCHEMA: &str = "lph-serve/1";

/// The request kinds of the protocol.
pub const SERVE_KINDS: [&str; 4] = ["membership", "lint", "reduction", "list"];

/// Every structured error code a response may carry.
pub const SERVE_ERROR_CODES: [&str; 7] = [
    "parse_error",
    "unknown_artifact",
    "bad_graph",
    "unsupported_level",
    "over_budget",
    "unverified_bytecode",
    "engine_error",
];

fn as_obj<'a>(v: &'a Json, what: &str) -> Result<&'a [(String, Json)], String> {
    match v {
        Json::Obj(pairs) => Ok(pairs),
        _ => Err(format!("{what} must be a JSON object")),
    }
}

fn str_field<'a>(v: &'a Json, key: &str, what: &str) -> Result<&'a str, String> {
    v.get(key)
        .and_then(Json::as_str)
        .ok_or(format!("{what} needs a string field {key:?}"))
}

fn uint_field(v: &Json, key: &str, what: &str) -> Result<u64, String> {
    match v.get(key) {
        Some(Json::Num(n)) if *n >= 0.0 && n.fract() == 0.0 => Ok(*n as u64),
        _ => Err(format!("{what} needs a nonnegative integer field {key:?}")),
    }
}

/// Validates a `"graph"` value: either an explicit graph
/// (`{"labels":[..],"edges":[[u,v],..]}`, labels as `0`/`1` strings) or a
/// generator family (`{"family":"cycle","n":6}`).
pub fn validate_serve_graph(v: &Json) -> Result<(), String> {
    as_obj(v, "graph")?;
    if v.get("family").is_some() {
        let fam = str_field(v, "family", "family graph")?;
        if !["cycle", "path", "complete", "star", "one_unselected_cycle"].contains(&fam) {
            return Err(format!("unknown graph family {fam:?}"));
        }
        uint_field(v, "n", "family graph")?;
        return Ok(());
    }
    let labels = v
        .get("labels")
        .and_then(Json::as_arr)
        .ok_or("explicit graph needs a \"labels\" array")?;
    for l in labels {
        let s = l.as_str().ok_or("labels must be strings")?;
        if !s.chars().all(|c| c == '0' || c == '1') {
            return Err(format!("label {s:?} is not a 0/1 bit string"));
        }
    }
    let edges = v
        .get("edges")
        .and_then(Json::as_arr)
        .ok_or("explicit graph needs an \"edges\" array")?;
    for e in edges {
        let pair = e.as_arr().ok_or("edges must be [u,v] pairs")?;
        if pair.len() != 2 {
            return Err("edges must be [u,v] pairs".into());
        }
        for end in pair {
            match end {
                Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => {}
                _ => return Err("edge endpoints must be nonnegative integers".into()),
            }
        }
    }
    Ok(())
}

/// Validates one request line against the `lph-serve/1` schema.
///
/// # Errors
///
/// Returns a description of the first structural mismatch.
pub fn validate_serve_request(v: &Json) -> Result<(), String> {
    as_obj(v, "request")?;
    str_field(v, "id", "request")?;
    let kind = str_field(v, "kind", "request")?;
    if !SERVE_KINDS.contains(&kind) {
        return Err(format!("unknown request kind {kind:?}"));
    }
    match kind {
        "membership" => {
            str_field(v, "arbiter", "membership request")?;
            validate_serve_graph(v.get("graph").ok_or("membership request needs a graph")?)?;
            if v.get("level").is_some() {
                uint_field(v, "level", "membership request")?;
            }
            if let Some(b) = v.get("backend") {
                let b = b.as_str().ok_or("backend must be a string")?;
                if !["auto", "cdcl", "exhaustive"].contains(&b) {
                    return Err(format!("unknown backend {b:?}"));
                }
            }
            if let Some(e) = v.get("exec") {
                let e = e.as_str().ok_or("exec must be a string")?;
                if !["auto", "interpreted", "compiled"].contains(&e) {
                    return Err(format!("unknown exec backend {e:?}"));
                }
            }
        }
        "lint" => {
            let target = str_field(v, "target", "lint request")?;
            if !target.starts_with("arbiter:") && !target.starts_with("reduction:") {
                return Err(format!(
                    "lint target {target:?} must be \"arbiter:NAME\" or \"reduction:NAME\""
                ));
            }
            validate_serve_graph(v.get("graph").ok_or("lint request needs a graph")?)?;
            if let Some(d) = v.get("deep") {
                if !matches!(d, Json::Bool(_)) {
                    return Err("lint \"deep\" must be a boolean".into());
                }
            }
        }
        "reduction" => {
            str_field(v, "reduction", "reduction request")?;
            validate_serve_graph(v.get("graph").ok_or("reduction request needs a graph")?)?;
        }
        _ => {} // "list" carries no payload.
    }
    Ok(())
}

/// Validates one response line against the `lph-serve/1` schema.
///
/// # Errors
///
/// Returns a description of the first structural mismatch.
pub fn validate_serve_response(v: &Json) -> Result<(), String> {
    as_obj(v, "response")?;
    match v.get("id") {
        Some(Json::Str(_) | Json::Null) => {}
        _ => return Err("response needs an \"id\" that is a string or null".into()),
    }
    match v.get("ok") {
        Some(Json::Bool(true)) => {
            let kind = str_field(v, "kind", "ok response")?;
            if !SERVE_KINDS.contains(&kind) {
                return Err(format!("unknown response kind {kind:?}"));
            }
            match kind {
                "membership" => {
                    if !matches!(v.get("eve_wins"), Some(Json::Bool(_))) {
                        return Err("membership response needs boolean \"eve_wins\"".into());
                    }
                    uint_field(v, "nodes", "membership response")?;
                    let refutation = str_field(v, "refutation", "membership response")?;
                    if !["none", "checked", "unchecked"].contains(&refutation) {
                        return Err(format!("unknown refutation tag {refutation:?}"));
                    }
                }
                "lint" => {
                    uint_field(v, "failures", "lint response")?;
                    v.get("diagnostics")
                        .and_then(Json::as_arr)
                        .ok_or("lint response needs a \"diagnostics\" array")?;
                }
                "reduction" => {
                    uint_field(v, "nodes", "reduction response")?;
                    uint_field(v, "edges", "reduction response")?;
                    validate_serve_graph(
                        v.get("output").ok_or("reduction response needs output")?,
                    )?;
                }
                _ => {
                    v.get("arbiters")
                        .and_then(Json::as_arr)
                        .ok_or("list response needs an \"arbiters\" array")?;
                    v.get("reductions")
                        .and_then(Json::as_arr)
                        .ok_or("list response needs a \"reductions\" array")?;
                }
            }
        }
        Some(Json::Bool(false)) => {
            let err = v
                .get("error")
                .ok_or("error response needs an error object")?;
            as_obj(err, "error")?;
            let code = str_field(err, "code", "error")?;
            if !SERVE_ERROR_CODES.contains(&code) {
                return Err(format!("unknown error code {code:?}"));
            }
            str_field(err, "detail", "error")?;
            if code == "over_budget" {
                // The structured rejection: the certified cost and the
                // configured budget must both be machine-readable.
                uint_field(err, "cost", "over_budget error")?;
                uint_field(err, "budget", "over_budget error")?;
            }
            if code == "unverified_bytecode" {
                // The translation-validation rejection names the rules
                // (`VM001`…) the compiled artifact failed.
                err.get("findings")
                    .and_then(Json::as_arr)
                    .ok_or("unverified_bytecode error needs a \"findings\" array")?;
            }
        }
        _ => return Err("response needs a boolean \"ok\"".into()),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(text: &str) -> Json {
        Json::parse(text).expect("test document parses")
    }

    #[test]
    fn accepts_canonical_requests() {
        for line in [
            r#"{"id":"a","kind":"membership","arbiter":"eulerian_decider","graph":{"family":"cycle","n":6}}"#,
            r#"{"id":"b","kind":"membership","arbiter":"x","graph":{"labels":["1","1"],"edges":[[0,1]]},"level":1,"backend":"cdcl"}"#,
            r#"{"id":"b2","kind":"membership","arbiter":"x","graph":{"family":"cycle","n":4},"exec":"compiled"}"#,
            r#"{"id":"c","kind":"lint","target":"arbiter:two_colorable_verifier","graph":{"family":"path","n":3},"deep":true}"#,
            r#"{"id":"d","kind":"reduction","reduction":"all_selected_to_eulerian","graph":{"family":"cycle","n":3}}"#,
            r#"{"id":"e","kind":"list"}"#,
        ] {
            validate_serve_request(&parse(line)).unwrap_or_else(|e| panic!("{line}: {e}"));
        }
    }

    #[test]
    fn rejects_malformed_requests() {
        for (line, needle) in [
            (r#"{"kind":"list"}"#, "id"),
            (r#"{"id":"a","kind":"frobnicate"}"#, "kind"),
            (
                r#"{"id":"a","kind":"membership","graph":{"family":"cycle","n":3}}"#,
                "arbiter",
            ),
            (
                r#"{"id":"a","kind":"membership","arbiter":"x","graph":{"family":"moebius","n":3}}"#,
                "family",
            ),
            (
                r#"{"id":"a","kind":"membership","arbiter":"x","graph":{"labels":["2"],"edges":[]}}"#,
                "bit string",
            ),
            (
                r#"{"id":"a","kind":"lint","target":"x","graph":{"family":"cycle","n":3}}"#,
                "target",
            ),
            (
                r#"{"id":"a","kind":"membership","arbiter":"x","graph":{"labels":["1","1"],"edges":[[0]]}}"#,
                "pairs",
            ),
            (
                r#"{"id":"a","kind":"membership","arbiter":"x","graph":{"family":"cycle","n":3},"exec":"jit"}"#,
                "exec",
            ),
        ] {
            let err = validate_serve_request(&parse(line)).expect_err(line);
            assert!(err.contains(needle), "{line}: {err}");
        }
    }

    #[test]
    fn accepts_canonical_responses() {
        for line in [
            r#"{"id":"a","ok":true,"kind":"membership","arbiter":"x","nodes":6,"level":0,"eve_wins":true,"witness":false,"refutation":"none"}"#,
            r#"{"id":"b","ok":true,"kind":"lint","target":"arbiter:x","failures":0,"diagnostics":[]}"#,
            r#"{"id":"c","ok":true,"kind":"reduction","reduction":"x","nodes":2,"edges":1,"output":{"labels":["1","1"],"edges":[[0,1]]}}"#,
            r#"{"id":"d","ok":true,"kind":"list","arbiters":[],"reductions":[]}"#,
            r#"{"id":null,"ok":false,"error":{"code":"parse_error","detail":"bad json"}}"#,
            r#"{"id":"e","ok":false,"error":{"code":"over_budget","detail":"x","cost":900,"budget":100}}"#,
            r#"{"id":"f","ok":false,"error":{"code":"unverified_bytecode","detail":"x","findings":["VM003"]}}"#,
        ] {
            validate_serve_response(&parse(line)).unwrap_or_else(|e| panic!("{line}: {e}"));
        }
    }

    #[test]
    fn rejects_malformed_responses() {
        for (line, needle) in [
            (r#"{"id":"a","ok":true,"kind":"nope"}"#, "kind"),
            (
                r#"{"id":"a","ok":false,"error":{"code":"oops","detail":"d"}}"#,
                "code",
            ),
            (
                // over_budget without the structured cost/budget fields.
                r#"{"id":"a","ok":false,"error":{"code":"over_budget","detail":"d"}}"#,
                "cost",
            ),
            (
                // unverified_bytecode without the failed-rule list.
                r#"{"id":"a","ok":false,"error":{"code":"unverified_bytecode","detail":"d"}}"#,
                "findings",
            ),
            (
                r#"{"id":7,"ok":true,"kind":"list","arbiters":[],"reductions":[]}"#,
                "id",
            ),
            (
                r#"{"id":"a","ok":true,"kind":"membership","nodes":3,"refutation":"maybe","eve_wins":true}"#,
                "refutation",
            ),
        ] {
            let err = validate_serve_response(&parse(line)).expect_err(line);
            assert!(err.contains(needle), "{line}: {err}");
        }
    }
}
