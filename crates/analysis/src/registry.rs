//! The rule registry: one row per lint rule, plus the allow/deny
//! configuration applied to raw diagnostics.

use std::collections::BTreeSet;

use crate::diagnostic::{Diagnostic, Severity};

/// Static metadata about one lint rule.
pub struct RuleInfo {
    /// The diagnostic code, e.g. `DTM001`.
    pub code: &'static str,
    /// A short name.
    pub name: &'static str,
    /// What the rule checks.
    pub description: &'static str,
    /// The severity the rule usually fires at (individual diagnostics may
    /// differ; e.g. `DTM004` has both error- and warning-level findings).
    pub default_severity: Severity,
}

/// Every rule the analyzer knows, in code order. Rules `DTM007`–`DTM010`,
/// `FRM006`–`FRM008`, `RED003`–`RED005`, `VM001`–`VM004`, and
/// `PLN001`–`PLN003` belong to the semantic tier ([`crate::flow`]) and
/// only run in `lph-lint --analyze` deep mode (the `VM`/`PLN` families
/// are the compiled-tier translation validators); `SAT001`–`SAT003`
/// ([`crate::proofcheck`]) re-decide registered game claims with the
/// CDCL backend in every mode.
pub const RULES: [RuleInfo; 35] = [
    RuleInfo {
        code: "DTM001",
        name: "tm-totality",
        description: "every reachable computing state covers all 125 symbol triples",
        default_severity: Severity::Error,
    },
    RuleInfo {
        code: "DTM002",
        name: "tm-unreachable-state",
        description: "non-designated states must be reachable from q_start",
        default_severity: Severity::Warning,
    },
    RuleInfo {
        code: "DTM003",
        name: "tm-dead-transitions",
        description: "no transition entries from states that never scan",
        default_severity: Severity::Warning,
    },
    RuleInfo {
        code: "DTM004",
        name: "tm-tape-discipline",
        description: "the left-end marker stays on cell 0 and is never overwritten or crossed",
        default_severity: Severity::Error,
    },
    RuleInfo {
        code: "DTM005",
        name: "tm-halting",
        description: "q_stop is reachable and the single-round claim matches q_pause use",
        default_severity: Severity::Error,
    },
    RuleInfo {
        code: "DTM006",
        name: "tm-no-progress-cycle",
        description: "no cycle of transitions that repeat the machine configuration exactly",
        default_severity: Severity::Error,
    },
    RuleInfo {
        code: "DTM007",
        name: "tm-flow-reachability",
        description: "syntactically reachable states are reached by some abstract configuration",
        default_severity: Severity::Warning,
    },
    RuleInfo {
        code: "DTM008",
        name: "tm-flow-halting",
        description: "some abstract configuration reaches q_stop (or q_pause for multi-round)",
        default_severity: Severity::Error,
    },
    RuleInfo {
        code: "DTM009",
        name: "tm-certified-bound",
        description: "claimed per-round step/space polynomials dominate the derived certificate",
        default_severity: Severity::Proof,
    },
    RuleInfo {
        code: "DTM010",
        name: "tm-step-certificate",
        description: "a polynomial per-round step certificate is derivable at all",
        default_severity: Severity::Warning,
    },
    RuleInfo {
        code: "FRM001",
        name: "formula-unused-var",
        description: "every quantified variable occurs in its body",
        default_severity: Severity::Warning,
    },
    RuleInfo {
        code: "FRM002",
        name: "formula-shadowing",
        description: "no quantifier re-binds a variable already in scope",
        default_severity: Severity::Warning,
    },
    RuleInfo {
        code: "FRM003",
        name: "formula-signature",
        description: "atoms stay inside the declared signature; SO indices are arity-consistent",
        default_severity: Severity::Error,
    },
    RuleInfo {
        code: "FRM004",
        name: "formula-level-claim",
        description: "the claimed Σℓ/Πℓ level and LFO/FO fragment match the recomputed ones",
        default_severity: Severity::Error,
    },
    RuleInfo {
        code: "FRM005",
        name: "formula-monadic-claim",
        description: "monadicity claims match the quantified arities",
        default_severity: Severity::Error,
    },
    RuleInfo {
        code: "FRM006",
        name: "formula-semantic-level",
        description: "the claimed level survives dead-binder elimination",
        default_severity: Severity::Proof,
    },
    RuleInfo {
        code: "FRM007",
        name: "formula-radius-flow",
        description: "the claimed radius brackets the variable-flow and syntactic radii",
        default_severity: Severity::Proof,
    },
    RuleInfo {
        code: "FRM008",
        name: "formula-prefix-normal-form",
        description: "adjacent same-quantifier blocks are merged",
        default_severity: Severity::Warning,
    },
    RuleInfo {
        code: "ARB001",
        name: "arbiter-game-spec",
        description: "the game spec realizes the claimed Σℓ/Πℓ class",
        default_severity: Severity::Error,
    },
    RuleInfo {
        code: "ARB002",
        name: "arbiter-metered-rounds",
        description: "replayed round counts stay within the declared bound",
        default_severity: Severity::Warning,
    },
    RuleInfo {
        code: "RED001",
        name: "reduction-cluster-adjacency",
        description: "reduction outputs satisfy the Definition 21 cluster-map edge condition",
        default_severity: Severity::Error,
    },
    RuleInfo {
        code: "RED002",
        name: "reduction-cluster-surjectivity",
        description: "every input node receives a nonempty cluster",
        default_severity: Severity::Warning,
    },
    RuleInfo {
        code: "RED003",
        name: "reduction-domain",
        description: "probes of incident-edge-requiring reductions have no isolated nodes",
        default_severity: Severity::Error,
    },
    RuleInfo {
        code: "RED004",
        name: "reduction-cluster-size-bound",
        description: "replayed cluster patches stay within the declared size polynomials",
        default_severity: Severity::Proof,
    },
    RuleInfo {
        code: "RED005",
        name: "reduction-output-size-flow",
        description: "assembled outputs obey the composed whole-graph size bound",
        default_severity: Severity::Proof,
    },
    RuleInfo {
        code: "VM001",
        name: "vm-dispatch-translation",
        description: "every source transition sits at its dense-dispatch slot with an identical \
                      payload",
        default_severity: Severity::Proof,
    },
    RuleInfo {
        code: "VM002",
        name: "vm-halt-sentinel",
        description: "sourceless dispatch slots hold the canonical halt sentinel and populated \
                      slots are source-backed",
        default_severity: Severity::Proof,
    },
    RuleInfo {
        code: "VM003",
        name: "vm-skip-soundness",
        description: "run-length fast-path annotations are step-metering-equivalent to the \
                      unrolled self-loop",
        default_severity: Severity::Proof,
    },
    RuleInfo {
        code: "VM004",
        name: "vm-bytecode-certified-bound",
        description: "step/space polynomials re-derived from the bytecode agree with the \
                      interpreter-tier certificate",
        default_severity: Severity::Proof,
    },
    RuleInfo {
        code: "PLN001",
        name: "plan-constant-fold",
        description: "plan constant folds are sound against independent constant propagation \
                      over the source matrix",
        default_severity: Severity::Proof,
    },
    RuleInfo {
        code: "PLN002",
        name: "plan-guard-fusion",
        description: "fused Adj/Near ranges replay a source bounded quantifier's slot, anchor, \
                      and radius",
        default_severity: Severity::Proof,
    },
    RuleInfo {
        code: "PLN003",
        name: "plan-cost-pinch",
        description: "the plan-derived worst-case evaluation cost is dominated by the \
                      source-derived bound",
        default_severity: Severity::Proof,
    },
    RuleInfo {
        code: "SAT001",
        name: "sat-unverifiable-refutation",
        description: "game claims match the CDCL verdict, with a checker-accepted RUP refutation \
                      on the UNSAT side",
        default_severity: Severity::Proof,
    },
    RuleInfo {
        code: "SAT002",
        name: "sat-proof-cnf-mismatch",
        description: "refutation proofs are about the formula they claim to refute",
        default_severity: Severity::Proof,
    },
    RuleInfo {
        code: "SAT003",
        name: "sat-budget-exhausted-claim",
        description: "game claims are never asserted past an exhausted solver budget",
        default_severity: Severity::Proof,
    },
];

/// Looks a rule up by code.
pub fn rule(code: &str) -> Option<&'static RuleInfo> {
    RULES.iter().find(|r| r.code == code)
}

/// Allow/deny configuration, with `rustc`-like semantics: `allow`
/// suppresses a rule's diagnostics entirely, `deny` escalates them to
/// errors, and `deny_warnings` escalates every warning.
#[derive(Debug, Default, Clone)]
pub struct RuleConfig {
    allowed: BTreeSet<String>,
    denied: BTreeSet<String>,
    deny_warnings: bool,
}

impl RuleConfig {
    /// The default configuration (rule severities unchanged).
    pub fn new() -> Self {
        RuleConfig::default()
    }

    /// Suppresses a rule. Unknown codes are rejected.
    ///
    /// # Errors
    ///
    /// Returns the offending code when it names no rule.
    pub fn allow(&mut self, code: &str) -> Result<(), String> {
        if rule(code).is_none() {
            return Err(format!("unknown rule code `{code}`"));
        }
        self.allowed.insert(code.to_owned());
        Ok(())
    }

    /// Escalates a rule to error severity. Unknown codes are rejected.
    ///
    /// # Errors
    ///
    /// Returns the offending code when it names no rule.
    pub fn deny(&mut self, code: &str) -> Result<(), String> {
        if rule(code).is_none() {
            return Err(format!("unknown rule code `{code}`"));
        }
        self.denied.insert(code.to_owned());
        Ok(())
    }

    /// Escalates every warning to an error (`--deny warnings`).
    pub fn deny_all_warnings(&mut self) {
        self.deny_warnings = true;
    }

    /// Applies the configuration: drops allowed codes and escalates
    /// denied ones, preserving the input order otherwise.
    pub fn apply(&self, diags: Vec<Diagnostic>) -> Vec<Diagnostic> {
        diags
            .into_iter()
            .filter(|d| !self.allowed.contains(&d.code))
            .map(|mut d| {
                if self.denied.contains(&d.code)
                    || (self.deny_warnings && d.severity == Severity::Warning)
                {
                    d.severity = Severity::Error;
                }
                d
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_codes_are_unique_and_sorted_per_family() {
        let codes: Vec<&str> = RULES.iter().map(|r| r.code).collect();
        let mut sorted = codes.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), RULES.len(), "duplicate rule code");
        assert!(rule("DTM001").is_some());
        assert!(rule("XXX999").is_none());
    }

    #[test]
    fn allow_drops_and_deny_escalates() {
        let mut cfg = RuleConfig::new();
        cfg.allow("DTM002").unwrap();
        cfg.deny("FRM001").unwrap();
        assert!(cfg.allow("NOPE01").is_err());
        let diags = vec![
            Diagnostic::warning("DTM002", "a", "dropped"),
            Diagnostic::warning("FRM001", "a", "escalated"),
            Diagnostic::warning("FRM002", "a", "kept"),
        ];
        let out = cfg.apply(diags);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].code, "FRM001");
        assert_eq!(out[0].severity, Severity::Error);
        assert_eq!(out[1].severity, Severity::Warning);
    }

    #[test]
    fn deny_warnings_spares_notes() {
        let mut cfg = RuleConfig::new();
        cfg.deny_all_warnings();
        let out = cfg.apply(vec![
            Diagnostic::warning("DTM002", "a", "w"),
            Diagnostic::note("FRM005", "a", "n"),
        ]);
        assert_eq!(out[0].severity, Severity::Error);
        assert_eq!(out[1].severity, Severity::Note);
    }
}
