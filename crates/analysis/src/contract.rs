//! Contract checks for arbiters and local reductions (rules
//! `ARB001`/`ARB002` and `RED001`/`RED002`).
//!
//! Arbiters and reductions carry *declarations* — the complexity class an
//! arbiter decides, the round budget it needs, the cluster structure a
//! reduction produces — that the type system cannot enforce. These rules
//! replay the artifacts on small probe inputs and compare the declarations
//! against what actually happened.

use lph_core::{Arbiter, Player};
use lph_graphs::{CertificateAssignment, CertificateList, IdAssignment, LabeledGraph, NodeId};
use lph_machine::ExecLimits;
use lph_reductions::{apply, LocalReduction};

use crate::diagnostic::Diagnostic;

/// An arbiter plus the author's claims and a set of probe graphs.
pub struct ArbiterArtifact {
    /// The arbiter (its [`Arbiter::name`] names the diagnostics).
    pub arbiter: Arbiter,
    /// Claimed decision class, e.g. `"Σ1"` or `"Π2"` (`"Σ0"` for
    /// deciders; for `ℓ = 0` the two names coincide and either is
    /// accepted).
    pub claimed_class: String,
    /// Declared upper bound on communication rounds per run.
    pub declared_rounds: usize,
    /// Labeled inputs the arbiter is replayed on (labels must match the
    /// encoding the arbiter expects).
    pub probes: Vec<LabeledGraph>,
    /// Concrete game instances with claimed winners, re-decided (with a
    /// checked refutation on the UNSAT side) by
    /// [`crate::proofcheck::check_game_claims`].
    pub game_claims: Vec<crate::proofcheck::GameClaim>,
}

impl ArbiterArtifact {
    /// Wraps an arbiter with its claims.
    pub fn new(arbiter: Arbiter, claimed_class: &str, declared_rounds: usize) -> Self {
        ArbiterArtifact {
            arbiter,
            claimed_class: claimed_class.to_owned(),
            declared_rounds,
            probes: Vec::new(),
            game_claims: Vec::new(),
        }
    }

    /// Adds probe inputs.
    #[must_use]
    pub fn with_probes(mut self, probes: Vec<LabeledGraph>) -> Self {
        self.probes = probes;
        self
    }

    /// Adds game claims (`SAT001`–`SAT003`).
    #[must_use]
    pub fn with_game_claims(mut self, claims: Vec<crate::proofcheck::GameClaim>) -> Self {
        self.game_claims = claims;
        self
    }

    pub(crate) fn artifact(&self) -> String {
        format!("arbiter:{}", self.arbiter.name())
    }
}

/// Parses `"Σℓ"` / `"Πℓ"` into `(leading player, ℓ)`.
fn parse_class(s: &str) -> Option<(Player, usize)> {
    let mut chars = s.chars();
    let player = match chars.next()? {
        'Σ' => Player::Eve,
        'Π' => Player::Adam,
        _ => return None,
    };
    let ell: usize = chars.as_str().parse().ok()?;
    Some((player, ell))
}

/// `ARB001` — the arbiter's [`lph_core::GameSpec`] must realize the
/// claimed class: `ℓ` moves, Eve first for `Σℓ`, Adam first for `Πℓ`.
pub fn check_game_spec(a: &ArbiterArtifact) -> Vec<Diagnostic> {
    let spec = a.arbiter.spec();
    let Some((player, ell)) = parse_class(&a.claimed_class) else {
        return vec![Diagnostic::error(
            "ARB001",
            a.artifact(),
            format!(
                "unparseable class claim {:?} (expected Σℓ or Πℓ)",
                a.claimed_class
            ),
        )];
    };
    let mut out = Vec::new();
    if spec.ell != ell {
        out.push(Diagnostic::error(
            "ARB001",
            a.artifact(),
            format!(
                "claimed {} but the game spec plays {} certificate moves",
                a.claimed_class, spec.ell
            ),
        ));
    }
    if spec.ell > 0 && ell > 0 && spec.first != player {
        let (want, have) = match player {
            Player::Eve => ("Eve", "Adam"),
            Player::Adam => ("Adam", "Eve"),
        };
        out.push(
            Diagnostic::error(
                "ARB001",
                a.artifact(),
                format!(
                    "claimed {} ({want} moves first) but the spec starts with {have}",
                    a.claimed_class
                ),
            )
            .with_suggestion("use GameSpec::sigma for Σℓ and GameSpec::pi for Πℓ"),
        );
    }
    out
}

/// `ARB002` — replay each probe with `ℓ` empty certificate moves and
/// compare the metered round count against the declared bound. (Round
/// count is independent of certificate *content* for the corpus machines:
/// they pause once per traversed edge of their scan structure.)
pub fn check_metered_rounds(a: &ArbiterArtifact) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if a.probes.is_empty() {
        out.push(
            Diagnostic::note(
                "ARB002",
                a.artifact(),
                "no probe inputs declared; metered-usage checks were skipped",
            )
            .with_suggestion("attach at least one probe graph via with_probes"),
        );
        return out;
    }
    let spec = a.arbiter.spec().clone();
    let limits = ExecLimits::default();
    for (i, g) in a.probes.iter().enumerate() {
        let id = IdAssignment::global(g);
        let certs = CertificateList::from_assignments(
            (0..spec.ell)
                .map(|_| CertificateAssignment::empty(g))
                .collect(),
        );
        match a.arbiter.run(g, &id, &certs, &limits) {
            Ok(outcome) => {
                if outcome.rounds > a.declared_rounds {
                    out.push(
                        Diagnostic::warning(
                            "ARB002",
                            a.artifact(),
                            format!(
                                "probe #{i} ({} nodes) ran {} rounds, exceeding the declared \
                                 bound of {}",
                                g.node_count(),
                                outcome.rounds,
                                a.declared_rounds,
                            ),
                        )
                        .with_suggestion("raise the declared round bound or tighten the machine"),
                    );
                }
            }
            Err(e) => {
                out.push(Diagnostic::error(
                    "ARB002",
                    a.artifact(),
                    format!(
                        "probe #{i} ({} nodes) failed to execute: {e}",
                        g.node_count()
                    ),
                ));
            }
        }
    }
    out
}

/// A local reduction plus probe inputs to replay it on.
pub struct ReductionArtifact {
    /// The reduction.
    pub reduction: Box<dyn LocalReduction + Send + Sync>,
    /// Labeled inputs (labels must match the encoding the reduction
    /// expects).
    pub probes: Vec<LabeledGraph>,
}

impl ReductionArtifact {
    /// Wraps a reduction with its probes.
    pub fn new(
        reduction: Box<dyn LocalReduction + Send + Sync>,
        probes: Vec<LabeledGraph>,
    ) -> Self {
        ReductionArtifact { reduction, probes }
    }

    pub(crate) fn artifact(&self) -> String {
        format!("reduction:{}", self.reduction.name())
    }
}

/// A hand-presented cluster map `g : V(G') → V(G)` to check directly
/// (used by fixtures and by external tooling; [`apply`] outputs are
/// checked via [`check_reduction`]).
pub struct ClusterMapArtifact {
    /// Name for diagnostics.
    pub name: String,
    /// The output graph `G'`.
    pub g_prime: LabeledGraph,
    /// The input graph `G`.
    pub g: LabeledGraph,
    /// `assignment[w']` is the claimed image of `w' ∈ G'`.
    pub assignment: Vec<NodeId>,
}

/// The Definition 21 conditions on a cluster assignment, checked from
/// first principles: every node of `G'` maps into `G` (`RED001`), every
/// edge of `G'` stays within a cluster or joins clusters of adjacent
/// nodes (`RED001`), and every node of `G` has a nonempty cluster
/// (`RED002`).
pub fn check_assignment(
    artifact: &str,
    g_prime: &LabeledGraph,
    g: &LabeledGraph,
    assignment: &[NodeId],
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if assignment.len() != g_prime.node_count() {
        out.push(Diagnostic::error(
            "RED001",
            artifact,
            format!(
                "cluster assignment covers {} nodes but G' has {}",
                assignment.len(),
                g_prime.node_count(),
            ),
        ));
        return out;
    }
    for (w, &target) in assignment.iter().enumerate() {
        if target.0 >= g.node_count() {
            out.push(Diagnostic::error(
                "RED001",
                artifact,
                format!("node v{w} of G' maps to {target}, outside G"),
            ));
            return out;
        }
    }
    for (u, v) in g_prime.edges() {
        let (gu, gv) = (assignment[u.0], assignment[v.0]);
        if gu != gv && !g.has_edge(gu, gv) {
            out.push(
                Diagnostic::error(
                    "RED001",
                    artifact,
                    format!(
                        "edge {{{u}, {v}}} of G' joins the clusters of non-adjacent nodes \
                         {gu} and {gv}",
                    ),
                )
                .with_suggestion(
                    "outer edges may only connect a cluster to clusters of graph neighbors",
                ),
            );
        }
    }
    let mut sizes = vec![0usize; g.node_count()];
    for &t in assignment {
        sizes[t.0] += 1;
    }
    for (w, &s) in sizes.iter().enumerate() {
        if s == 0 {
            out.push(
                Diagnostic::warning(
                    "RED002",
                    artifact,
                    format!("cluster of node v{w} of G is empty"),
                )
                .with_suggestion(
                    "emit at least one node per cluster so every original node observes the \
                     verdict",
                ),
            );
        }
    }
    out
}

/// Runs `RED001`/`RED002` on a hand-presented cluster map.
pub fn check_cluster_map(a: &ClusterMapArtifact) -> Vec<Diagnostic> {
    check_assignment(
        &format!("cluster-map:{}", a.name),
        &a.g_prime,
        &a.g,
        &a.assignment,
    )
}

/// Replays a reduction on its probes and runs the cluster-map conditions
/// on each output (`RED001`/`RED002`; a probe the reduction rejects is an
/// error, since corpus probes are well-formed inputs).
pub fn check_reduction(a: &ReductionArtifact) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if a.probes.is_empty() {
        out.push(
            Diagnostic::note(
                "RED001",
                a.artifact(),
                "no probe inputs declared; cluster-map checks were skipped",
            )
            .with_suggestion("attach at least one probe graph"),
        );
        return out;
    }
    for (i, g) in a.probes.iter().enumerate() {
        let id = IdAssignment::global(g);
        match apply(a.reduction.as_ref(), g, &id) {
            Ok((g_prime, map)) => {
                out.extend(check_assignment(
                    &a.artifact(),
                    &g_prime,
                    g,
                    map.assignment(),
                ));
            }
            Err(e) => {
                out.push(Diagnostic::error(
                    "RED001",
                    a.artifact(),
                    format!(
                        "probe #{i} ({} nodes) failed to reduce: {e}",
                        g.node_count()
                    ),
                ));
            }
        }
    }
    out
}

/// Runs every contract rule over one arbiter artifact, including the
/// proof-carrying game claims (`SAT001`–`SAT003`).
pub fn check_arbiter(a: &ArbiterArtifact) -> Vec<Diagnostic> {
    let mut out = check_game_spec(a);
    out.extend(check_metered_rounds(a));
    out.extend(crate::proofcheck::check_game_claims(a));
    out
}
