//! The semantic analysis tier: dataflow engines that *derive* the facts
//! the syntactic rules only cross-check.
//!
//! Five engines — one per artifact family, plus one per compiled tier:
//!
//! * [`machine`] — abstract interpretation of transition tables
//!   (`DTM007`–`DTM010`): blank-zone product reachability, semantic
//!   halting, and a recursive SCC certificate deriving the Lemma 10
//!   per-round step/space polynomial.
//! * [`sentence`] — variable-flow analysis of sentences
//!   (`FRM006`–`FRM008`): the semantic hierarchy level after dead-binder
//!   elimination, the anchor-flow visibility radius, and prefix normal
//!   form.
//! * [`reduction`] — symbolic size flow for local reductions
//!   (`RED003`–`RED005`): domain preconditions, per-cluster size bounds
//!   in the view measure, and their composition to whole-output bounds.
//! * [`bytecode`] — translation validation of the compiled machine tier
//!   (`VM001`–`VM004`): dispatch-slot faithfulness, halt-sentinel
//!   coverage, skip fast-path soundness, and Lemma 10 bounds re-derived
//!   from the bytecode itself.
//! * [`plan`] — translation validation of the compiled sentence tier
//!   (`PLN001`–`PLN003`): constant-fold soundness, guard-fusion range
//!   correctness, and a worst-case evaluation-cost pinch against the
//!   source matrix.
//!
//! Engine verdicts that refute a registered claim carry
//! [`Severity::Proof`](crate::diagnostic::Severity::Proof): they come
//! with a derivation, not a replay, so no probe choice can make them go
//! away. `lph-lint --analyze` runs this tier on top of the syntactic
//! rules, timing each engine through `lph-trace`.

pub mod bytecode;
pub mod machine;
pub mod plan;
pub mod reduction;
pub mod sentence;

pub use bytecode::{analyze_bytecode, verify_bytecode};
pub use machine::{analyze, MachineFlow};
pub use plan::{plan_cost, verify_plan};
pub use reduction::reduction_domain_ok;
pub use sentence::{flow_radius, infer_level};
