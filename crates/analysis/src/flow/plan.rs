//! The plan translation validator (rules `PLN001`–`PLN003`): a static
//! verifier for the compiled sentence tier that certifies a
//! [`CompiledSentence`]'s hash-consed plan arena against its source
//! matrix.
//!
//! The plan compiler (see `lph-logic`'s `plan` module) folds constants,
//! fuses bounded-quantifier guards into `Adj`/`Near` range ops, and
//! reorders connective children — all soundness-critical rewrites that
//! were previously vouched for only by differential tests. Each rule
//! discharges one translation obligation:
//!
//! * `PLN001` (constant-fold soundness) — an independent three-valued
//!   (`⊤`/`⊥`/unknown) abstract evaluation of the source matrix, using
//!   only the fold premises the compiler is entitled to (non-empty
//!   domains for `∃x`/`∀x`, anchor-containing balls for `⇌≤r`, one-way
//!   folds for plain `⇌` whose range may be empty), must not contradict
//!   a constant plan root. Additionally, no arena node may retain a
//!   constant operand in a position a sound fold pass always eliminates
//!   (`¬⊤`, a constant conjunct, `∃x ⊤`, …): such a node cannot have
//!   been produced by the fold rules at all.
//! * `PLN002` (guard-fusion ranges) — every `Adj`/`Near` op in the arena
//!   must carry exactly the `(slot, anchor, radius)` of a source bounded
//!   quantifier, under a replay of the compiler's first-seen dense slot
//!   assignment. A corrupted radius or anchor silently evaluates the
//!   quantifier over the wrong Gaifman range.
//! * `PLN003` (worst-case cost pinch) — a matrix-evaluation cost
//!   polynomial in the structure size `n` is derived from the plan arena
//!   (atoms cost 1, quantified ranges at most `n`) and independently
//!   from the source matrix; the source-derived bound must dominate the
//!   plan-derived one ([`PolyBound::dominates`]), since folding,
//!   deduplication, and reordering may only shrink work. This pinches
//!   the compiled tier's cost against the sentence-flow tier the same
//!   way `VM004` pinches bytecode against the machine-flow tier.
//!
//! All three rules carry [`proof` severity](crate::Severity::Proof).
//! [`verify_plan`] bundles them for an explicit compiled plan (mutation
//! fixtures, demos); [`check_plan`] is the corpus entry point;
//! [`plan_cost`] exposes the plan-derived cost bound.

use std::collections::{BTreeMap, BTreeSet};

use lph_graphs::PolyBound;
use lph_logic::{CompiledSentence, FoVar, Formula, Matrix, PlanOp};

use crate::diagnostic::Diagnostic;
use crate::formula::SentenceArtifact;

/// Three-valued abstract truth: definitely true, definitely false, or
/// structure-dependent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Tri {
    True,
    False,
    Unknown,
}

impl Tri {
    fn of(b: bool) -> Tri {
        if b {
            Tri::True
        } else {
            Tri::False
        }
    }

    fn not(self) -> Tri {
        match self {
            Tri::True => Tri::False,
            Tri::False => Tri::True,
            Tri::Unknown => Tri::Unknown,
        }
    }
}

/// Independent constant propagation over the source matrix, mirroring
/// exactly the fold premises the compiler may use (and nothing more):
/// the result is sound for *every* structure the sentence could check.
fn tri_eval(f: &Formula) -> Tri {
    match f {
        Formula::True => Tri::True,
        Formula::False => Tri::False,
        Formula::Unary { .. } | Formula::Edge { .. } | Formula::App { .. } => Tri::Unknown,
        Formula::Eq(x, y) => {
            if x == y {
                Tri::True
            } else {
                Tri::Unknown
            }
        }
        Formula::Not(g) => tri_eval(g).not(),
        Formula::And(fs) => {
            let mut out = Tri::True;
            for g in fs {
                match tri_eval(g) {
                    Tri::False => return Tri::False,
                    Tri::Unknown => out = Tri::Unknown,
                    Tri::True => {}
                }
            }
            out
        }
        Formula::Or(fs) => {
            let mut out = Tri::False;
            for g in fs {
                match tri_eval(g) {
                    Tri::True => return Tri::True,
                    Tri::Unknown => out = Tri::Unknown,
                    Tri::False => {}
                }
            }
            out
        }
        Formula::Implies(a, b) => match (tri_eval(a), tri_eval(b)) {
            (Tri::False, _) | (_, Tri::True) => Tri::True,
            (Tri::True, Tri::False) => Tri::False,
            _ => Tri::Unknown,
        },
        Formula::Iff(a, b) => match (tri_eval(a), tri_eval(b)) {
            (Tri::Unknown, _) | (_, Tri::Unknown) => {
                // Structural equality is the one non-constant premise the
                // compiler uses (`a ↔ a` after interning): mirror it.
                if a == b {
                    Tri::True
                } else {
                    Tri::Unknown
                }
            }
            (x, y) => Tri::of(x == y),
        },
        // Non-empty domain: a constant body decides either quantifier.
        Formula::Exists { body, .. } | Formula::Forall { body, .. } => tri_eval(body),
        // The adjacency range may be empty, so only one polarity folds.
        Formula::ExistsAdj { body, .. } => match tri_eval(body) {
            Tri::False => Tri::False,
            _ => Tri::Unknown,
        },
        Formula::ForallAdj { body, .. } => match tri_eval(body) {
            Tri::True => Tri::True,
            _ => Tri::Unknown,
        },
        // A ball always contains its anchor: both polarities fold.
        Formula::ExistsNear { body, .. } | Formula::ForallNear { body, .. } => tri_eval(body),
    }
}

/// A fused bounded-quantifier guard: what an `Adj`/`Near` op claims
/// about its evaluation range.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Guard {
    exists: bool,
    /// `None` for plain adjacency, `Some(r)` for a radius-`r` ball.
    radius: Option<usize>,
    slot: usize,
    anchor: usize,
}

impl Guard {
    fn describe(self) -> String {
        let q = if self.exists { "∃" } else { "∀" };
        match self.radius {
            None => format!("{q}(slot {} ⇌ slot {})", self.slot, self.anchor),
            Some(r) => format!("{q}(slot {} ⇌≤{r} slot {})", self.slot, self.anchor),
        }
    }
}

/// A replay of the compiler's first-seen dense slot assignment: the
/// traversal below calls [`SlotMirror::slot`] in exactly the order
/// `Lowerer::lower` calls `fo_slot`.
#[derive(Default)]
struct SlotMirror {
    slots: BTreeMap<FoVar, usize>,
}

impl SlotMirror {
    fn slot(&mut self, x: FoVar) -> usize {
        let next = self.slots.len();
        *self.slots.entry(x).or_insert(next)
    }
}

/// Collects the source matrix's bounded-quantifier guards under the
/// replayed slot assignment.
fn source_guards(f: &Formula, m: &mut SlotMirror, out: &mut BTreeSet<Guard>) {
    match f {
        Formula::True | Formula::False => {}
        Formula::Unary { x, .. } => {
            m.slot(*x);
        }
        Formula::Edge { x, y, .. } | Formula::Eq(x, y) => {
            m.slot(*x);
            m.slot(*y);
        }
        Formula::App { args, .. } => {
            for &a in args {
                m.slot(a);
            }
        }
        Formula::Not(g) => source_guards(g, m, out),
        Formula::And(fs) | Formula::Or(fs) => {
            for g in fs {
                source_guards(g, m, out);
            }
        }
        Formula::Implies(a, b) | Formula::Iff(a, b) => {
            source_guards(a, m, out);
            source_guards(b, m, out);
        }
        Formula::Exists { x, body } | Formula::Forall { x, body } => {
            m.slot(*x);
            source_guards(body, m, out);
        }
        Formula::ExistsAdj { x, anchor, body } | Formula::ForallAdj { x, anchor, body } => {
            let exists = matches!(f, Formula::ExistsAdj { .. });
            let slot = m.slot(*x);
            let anchor = m.slot(*anchor);
            out.insert(Guard {
                exists,
                radius: None,
                slot,
                anchor,
            });
            source_guards(body, m, out);
        }
        Formula::ExistsNear {
            x,
            anchor,
            radius,
            body,
        }
        | Formula::ForallNear {
            x,
            anchor,
            radius,
            body,
        } => {
            let exists = matches!(f, Formula::ExistsNear { .. });
            let slot = m.slot(*x);
            let anchor = m.slot(*anchor);
            out.insert(Guard {
                exists,
                radius: Some(*radius),
                slot,
                anchor,
            });
            source_guards(body, m, out);
        }
    }
}

/// The guard an arena op claims, if it is an `Adj`/`Near` range op.
fn plan_guard(op: &PlanOp) -> Option<Guard> {
    match *op {
        PlanOp::ExistsAdj { slot, anchor, .. } => Some(Guard {
            exists: true,
            radius: None,
            slot,
            anchor,
        }),
        PlanOp::ForallAdj { slot, anchor, .. } => Some(Guard {
            exists: false,
            radius: None,
            slot,
            anchor,
        }),
        PlanOp::ExistsNear {
            slot,
            anchor,
            radius,
            ..
        } => Some(Guard {
            exists: true,
            radius: Some(radius),
            slot,
            anchor,
        }),
        PlanOp::ForallNear {
            slot,
            anchor,
            radius,
            ..
        } => Some(Guard {
            exists: false,
            radius: Some(radius),
            slot,
            anchor,
        }),
        _ => None,
    }
}

/// The matrix body of the compiled sentence's source.
fn matrix_body(cs: &CompiledSentence) -> &Formula {
    match &cs.sentence().matrix {
        Matrix::Lfo { body, .. } => body,
        Matrix::Fo(f) => f,
    }
}

/// `PLN001` — constant-fold soundness (see the module docs).
pub fn check_plan_folds(artifact: &str, cs: &CompiledSentence) -> Vec<Diagnostic> {
    let ops = cs.ops();
    let mut out = Vec::new();
    if let PlanOp::Const(b) = ops[cs.root()] {
        let reference = tri_eval(matrix_body(cs));
        if reference == Tri::of(!b) {
            out.push(
                Diagnostic::proof(
                    "PLN001",
                    artifact,
                    format!(
                        "plan root folded to the constant {b} but sound constant propagation \
                         over the source matrix derives {}: the compiled sentence answers \
                         every query wrong",
                        !b,
                    ),
                )
                .with_suggestion("recompile the plan from the source sentence"),
            );
        }
    }
    let is_const = |id: usize| matches!(ops.get(id), Some(PlanOp::Const(_)));
    let const_val = |id: usize| match ops.get(id) {
        Some(&PlanOp::Const(b)) => Some(b),
        _ => None,
    };
    for (id, op) in ops.iter().enumerate() {
        let violation = match op {
            PlanOp::Not(a) => is_const(*a),
            PlanOp::And(children) | PlanOp::Or(children) => children.iter().any(|&c| is_const(c)),
            PlanOp::Iff(a, b) => is_const(*a) || is_const(*b),
            PlanOp::Exists { body, .. }
            | PlanOp::Forall { body, .. }
            | PlanOp::ExistsNear { body, .. }
            | PlanOp::ForallNear { body, .. } => is_const(*body),
            // Plain adjacency only folds one polarity; the other constant
            // body is a legitimate residual.
            PlanOp::ExistsAdj { body, .. } => const_val(*body) == Some(false),
            PlanOp::ForallAdj { body, .. } => const_val(*body) == Some(true),
            _ => false,
        };
        if violation {
            out.push(Diagnostic::proof(
                "PLN001",
                artifact,
                format!(
                    "plan node {id} ({op:?}) retains a constant operand a sound fold pass \
                     always eliminates: this plan was not produced by the compiler's rewrite \
                     rules",
                ),
            ));
        }
    }
    out
}

/// `PLN002` — guard-fusion range correctness (see the module docs).
pub fn check_plan_guards(artifact: &str, cs: &CompiledSentence) -> Vec<Diagnostic> {
    let mut mirror = SlotMirror::default();
    if let Matrix::Lfo { x, .. } = &cs.sentence().matrix {
        mirror.slot(*x);
    }
    let mut source = BTreeSet::new();
    source_guards(matrix_body(cs), &mut mirror, &mut source);
    let mut out = Vec::new();
    for (id, op) in cs.ops().iter().enumerate() {
        let Some(guard) = plan_guard(op) else {
            continue;
        };
        if !source.contains(&guard) {
            out.push(
                Diagnostic::proof(
                    "PLN002",
                    artifact,
                    format!(
                        "plan node {id} evaluates {} but no source bounded quantifier has that \
                         guard: the fused range differs from the sentence's Gaifman range",
                        guard.describe(),
                    ),
                )
                .with_suggestion(
                    "every Adj/Near op must replay a source quantifier's (slot, anchor, radius)",
                ),
            );
        }
    }
    out
}

/// Worst-case evaluation cost of one source subformula, in the
/// structure size `n` (every quantifier range has at most `n` elements).
fn formula_cost(f: &Formula) -> PolyBound {
    let one = PolyBound::constant(1);
    let n = PolyBound::linear(0, 1);
    match f {
        Formula::True
        | Formula::False
        | Formula::Unary { .. }
        | Formula::Edge { .. }
        | Formula::Eq(..)
        | Formula::App { .. } => one,
        Formula::Not(g) => one.add(&formula_cost(g)),
        Formula::And(fs) | Formula::Or(fs) => {
            fs.iter().fold(one, |acc, g| acc.add(&formula_cost(g)))
        }
        // `→` lowers to `¬∨`, which costs one extra node.
        Formula::Implies(a, b) => PolyBound::constant(2)
            .add(&formula_cost(a))
            .add(&formula_cost(b)),
        Formula::Iff(a, b) => one.add(&formula_cost(a)).add(&formula_cost(b)),
        Formula::Exists { body, .. }
        | Formula::Forall { body, .. }
        | Formula::ExistsAdj { body, .. }
        | Formula::ForallAdj { body, .. }
        | Formula::ExistsNear { body, .. }
        | Formula::ForallNear { body, .. } => one.add(&n.mul(&formula_cost(body))),
    }
}

/// Bottom-up per-node cost of the plan arena, or an error naming a node
/// that references a non-prior node (the arena is built bottom-up, so a
/// forward or self reference proves the plan was tampered with).
fn plan_costs(cs: &CompiledSentence) -> Result<Vec<PolyBound>, usize> {
    let ops = cs.ops();
    let one = PolyBound::constant(1);
    let n = PolyBound::linear(0, 1);
    let mut costs: Vec<PolyBound> = Vec::with_capacity(ops.len());
    for (id, op) in ops.iter().enumerate() {
        let child = |c: usize| -> Result<&PolyBound, usize> {
            if c < id {
                Ok(&costs[c])
            } else {
                Err(id)
            }
        };
        let cost = match op {
            PlanOp::Const(_)
            | PlanOp::Unary { .. }
            | PlanOp::Edge { .. }
            | PlanOp::Eq(..)
            | PlanOp::App { .. } => one.clone(),
            PlanOp::Not(a) => one.add(child(*a)?),
            PlanOp::And(children) | PlanOp::Or(children) => {
                let mut acc = one.clone();
                for &c in children {
                    acc = acc.add(child(c)?);
                }
                acc
            }
            PlanOp::Iff(a, b) => one.add(child(*a)?).add(child(*b)?),
            PlanOp::Exists { body, .. }
            | PlanOp::Forall { body, .. }
            | PlanOp::ExistsAdj { body, .. }
            | PlanOp::ForallAdj { body, .. }
            | PlanOp::ExistsNear { body, .. }
            | PlanOp::ForallNear { body, .. } => one.add(&n.mul(child(*body)?)),
        };
        costs.push(cost);
    }
    Ok(costs)
}

/// The plan-derived worst-case cost of one full matrix evaluation (the
/// `Lfo` wrapper's `∀°x` sweep included), in the structure size `n`.
/// `None` when the arena is malformed (see [`check_plan_cost`]).
pub fn plan_cost(cs: &CompiledSentence) -> Option<PolyBound> {
    let costs = plan_costs(cs).ok()?;
    let root = costs.get(cs.root())?.clone();
    Some(match cs.lfo_slot() {
        Some(_) => PolyBound::constant(1).add(&PolyBound::linear(0, 1).mul(&root)),
        None => root,
    })
}

/// The source-derived worst-case cost of one full matrix evaluation —
/// the sentence-tier reference [`check_plan_cost`] pinches against.
pub fn sentence_cost(cs: &CompiledSentence) -> PolyBound {
    let body = formula_cost(matrix_body(cs));
    match &cs.sentence().matrix {
        Matrix::Lfo { .. } => PolyBound::constant(1).add(&PolyBound::linear(0, 1).mul(&body)),
        Matrix::Fo(_) => body,
    }
}

/// `PLN003` — worst-case cost pinch (see the module docs).
pub fn check_plan_cost(artifact: &str, cs: &CompiledSentence) -> Vec<Diagnostic> {
    let costs = match plan_costs(cs) {
        Ok(costs) => costs,
        Err(id) => {
            return vec![Diagnostic::proof(
                "PLN003",
                artifact,
                format!(
                    "plan node {id} references a node the bottom-up arena has not built yet: \
                     no cost bound is derivable from a tampered arena",
                ),
            )];
        }
    };
    let Some(root) = costs.get(cs.root()) else {
        return vec![Diagnostic::proof(
            "PLN003",
            artifact,
            format!("plan root {} is out of the arena's bounds", cs.root()),
        )];
    };
    let from_plan = match cs.lfo_slot() {
        Some(_) => PolyBound::constant(1).add(&PolyBound::linear(0, 1).mul(root)),
        None => root.clone(),
    };
    let from_source = sentence_cost(cs);
    if !from_source.dominates(&from_plan) {
        return vec![Diagnostic::proof(
            "PLN003",
            artifact,
            format!(
                "plan-derived evaluation cost {from_plan} exceeds the source-derived bound \
                 {from_source}: folding and deduplication may only shrink work, so the plan \
                 does not evaluate the source matrix",
            ),
        )];
    }
    Vec::new()
}

/// Runs all three plan translation-validation rules against an explicit
/// compiled plan — the entry point for mutation fixtures and demos.
pub fn verify_plan(artifact: &str, cs: &CompiledSentence) -> Vec<Diagnostic> {
    let mut out = check_plan_folds(artifact, cs);
    out.extend(check_plan_guards(artifact, cs));
    out.extend(check_plan_cost(artifact, cs));
    out
}

/// Corpus entry point: compile the artifact's sentence and verify the
/// plan. An unmutated compilation must come back clean.
pub fn check_plan(a: &SentenceArtifact) -> Vec<Diagnostic> {
    let cs = CompiledSentence::compile(&a.sentence);
    verify_plan(&a.artifact(), &cs)
}
