//! The reduction size-flow engine (rules `RED003`–`RED005`): symbolic
//! output-size bounds for local reductions, checked by replaying clusters
//! against the polynomials each reduction declares.
//!
//! A [`LocalReduction`] computes each cluster from a constant-radius view,
//! so its patch size can only depend on the two view quantities that grow
//! with the input: the center's degree and its label bit-length. Their sum
//! is the *measure* `m` the declared [`lph_reductions::SizeBound`]
//! polynomials are stated
//! in; the bounds have nonnegative coefficients, hence are monotone, and
//! compose to a whole-output bound in `N = node count + total label bits`:
//! every cluster measure satisfies `m_u ≤ N`, so
//! `|V(G')| ≤ N · nodes(N)` and `|E(G')| ≤ N · (inner(N) + outer(N))` —
//! the polynomial output-size discipline of Section 8, derived rather
//! than assumed.

use lph_graphs::{IdAssignment, LabeledGraph, PolyBound};
use lph_reductions::{LocalReduction, LocalView};

use crate::contract::ReductionArtifact;
use crate::diagnostic::Diagnostic;

/// The domain precondition shared by the gadget reductions: every node
/// must have an incident edge to anchor its gadget on. (Single-node
/// graphs are treated separately by the paper's propositions.)
pub fn reduction_domain_ok(g: &LabeledGraph) -> bool {
    g.node_count() > 0 && g.nodes().all(|u| g.degree(u) > 0)
}

/// The size measure of one view: center degree plus center label
/// bit-length.
fn measure(view: &LocalView) -> usize {
    view.degree() + view.label().len()
}

/// Replays `red` on every node of `g` exactly as `apply` would, passing
/// each `(measure, patch sizes)` observation to `f`. Returns `false`
/// when some cluster fails (those probes are `RED001`'s business).
fn replay_clusters(
    red: &(dyn LocalReduction + Send + Sync),
    g: &LabeledGraph,
    f: &mut impl FnMut(usize, usize, usize, usize),
) -> bool {
    let id = IdAssignment::global(g);
    for u in g.nodes() {
        let nb = g.neighborhood(u, red.radius());
        let ids = nb.members.iter().map(|&v| id.id(v).clone()).collect();
        let view = LocalView {
            center: nb.center_local,
            neighborhood: nb,
            ids,
        };
        let Ok(patch) = red.cluster(&view) else {
            return false;
        };
        f(
            measure(&view),
            patch.nodes.len(),
            patch.inner_edges.len(),
            patch.outer_edges.len(),
        );
    }
    true
}

/// `RED003` — domain precondition: a reduction declaring
/// `requires_incident_edges` must only be probed on graphs where every
/// node has one; a violating probe would anchor a gadget on nothing and
/// fail at runtime instead of analysis time.
pub fn check_domain(a: &ReductionArtifact) -> Vec<Diagnostic> {
    if !a.reduction.requires_incident_edges() {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (i, g) in a.probes.iter().enumerate() {
        if !reduction_domain_ok(g) {
            out.push(
                Diagnostic::error(
                    "RED003",
                    a.artifact(),
                    format!(
                        "probe #{i} ({} nodes) has an isolated node, outside the reduction's \
                         declared domain",
                        g.node_count()
                    ),
                )
                .with_suggestion("probe only graphs where every node has an incident edge"),
            );
        }
    }
    out
}

/// `RED004` — per-cluster size bound: every replayed cluster patch must
/// stay within the declared polynomials at its view's measure. A
/// violation refutes the declaration — the reduction's own output is the
/// counterexample.
pub fn check_cluster_size(a: &ReductionArtifact) -> Vec<Diagnostic> {
    let Some(bound) = a.reduction.size_bound() else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for (i, g) in a.probes.iter().enumerate() {
        let mut worst: Option<String> = None;
        replay_clusters(a.reduction.as_ref(), g, &mut |m, nodes, inner, outer| {
            let cases = [
                ("nodes", nodes, &bound.nodes),
                ("inner edges", inner, &bound.inner_edges),
                ("outer edges", outer, &bound.outer_edges),
            ];
            for (what, got, poly) in cases {
                if got > poly.eval(m) && worst.is_none() {
                    worst = Some(format!(
                        "a cluster on probe #{i} emits {got} {what} at measure {m}, \
                         exceeding the declared bound {poly}",
                    ));
                }
            }
        });
        if let Some(msg) = worst {
            out.push(
                Diagnostic::proof("RED004", a.artifact(), msg)
                    .with_suggestion("raise the declared size bound or shrink the gadget"),
            );
        }
    }
    out
}

/// `RED005` — whole-output size flow: composing the per-cluster bound
/// over all clusters bounds `G'` by polynomials in
/// `N = |V(G)| + Σ label bits`; the assembled probe outputs must obey
/// them. Reductions declaring no bound get a note — nothing static
/// vouches for their output-size discipline.
pub fn check_output_size(a: &ReductionArtifact) -> Vec<Diagnostic> {
    let Some(bound) = a.reduction.size_bound() else {
        if a.probes.is_empty() {
            return Vec::new();
        }
        return vec![Diagnostic::note(
            "RED005",
            a.artifact(),
            "reduction declares no size bound; output-size flow was not checked",
        )
        .with_suggestion("implement LocalReduction::size_bound")];
    };
    let n_of = |g: &LabeledGraph| -> usize {
        g.node_count() + g.nodes().map(|u| g.label(u).len()).sum::<usize>()
    };
    let whole_nodes = PolyBound::monomial(1, 1).mul(&bound.nodes);
    let whole_edges = PolyBound::monomial(1, 1).mul(&bound.inner_edges.add(&bound.outer_edges));
    let mut out = Vec::new();
    for (i, g) in a.probes.iter().enumerate() {
        let id = IdAssignment::global(g);
        let Ok((g_prime, _)) = lph_reductions::apply(a.reduction.as_ref(), g, &id) else {
            continue; // RED001 reports failing probes
        };
        let n = n_of(g);
        let cases = [
            ("nodes", g_prime.node_count(), &whole_nodes),
            ("edges", g_prime.edge_count(), &whole_edges),
        ];
        for (what, got, poly) in cases {
            if got > poly.eval(n) {
                out.push(
                    Diagnostic::proof(
                        "RED005",
                        a.artifact(),
                        format!(
                            "probe #{i} (size {n}) produced {got} output {what}, exceeding \
                             the composed bound {poly}",
                        ),
                    )
                    .with_suggestion("the per-cluster size bound is understated; raise it"),
                );
            }
        }
    }
    out
}

/// Runs every reduction flow rule over one artifact.
pub fn check_reduction_flow(a: &ReductionArtifact) -> Vec<Diagnostic> {
    let mut out = check_domain(a);
    out.extend(check_cluster_size(a));
    out.extend(check_output_size(a));
    out
}
