//! The sentence structure engine (rules `FRM006`–`FRM008`): variable-flow
//! analysis over [`Sentence`] prefixes and matrices.
//!
//! Where `FRM004` recomputes the *syntactic* level (counting the blocks as
//! written), the semantic tier asks what the sentence actually *uses*: a
//! quantifier block whose variables never reach an atom contributes nothing
//! to the alternation count, and a bounded quantifier chain only "sees" as
//! far as its anchors actually carry it. Both analyses are dataflow over
//! the AST — variables flow from binders through anchors into atoms.

use std::collections::BTreeMap;

use lph_logic::{FoVar, Formula, Level, Matrix, Sentence};

use crate::diagnostic::Diagnostic;
use crate::formula::SentenceArtifact;

/// The semantic hierarchy level: the syntactic level after eliminating
/// quantifier blocks none of whose variables occur in the matrix (dead
/// binders cannot change the alternation game) and re-merging adjacent
/// blocks of equal quantifier.
pub fn infer_level(sentence: &Sentence) -> Level {
    let used = sentence.matrix.body().so_vars();
    let mut merged = Vec::new();
    for b in &sentence.blocks {
        if !b.vars.iter().any(|q| used.contains(&q.var)) {
            continue;
        }
        if merged.last() != Some(&b.quantifier) {
            merged.push(b.quantifier);
        }
    }
    Level {
        ell: merged.len(),
        leading: merged.first().copied(),
    }
}

/// Walks `phi` tracking each variable's flow distance from the matrix
/// root, and folds the maximum distance of a variable *occurring in an
/// atom* into `max_used`.
fn walk_depths(phi: &Formula, depth: &mut BTreeMap<FoVar, usize>, max_used: &mut usize) {
    let use_var = |v: FoVar, depth: &BTreeMap<FoVar, usize>, max_used: &mut usize| {
        *max_used = (*max_used).max(depth.get(&v).copied().unwrap_or(0));
    };
    match phi {
        Formula::True | Formula::False => {}
        Formula::Unary { x, .. } => use_var(*x, depth, max_used),
        Formula::Edge { x, y, .. } | Formula::Eq(x, y) => {
            use_var(*x, depth, max_used);
            use_var(*y, depth, max_used);
        }
        Formula::App { args, .. } => {
            for &a in args {
                use_var(a, depth, max_used);
            }
        }
        Formula::Not(g) => walk_depths(g, depth, max_used),
        Formula::And(gs) | Formula::Or(gs) => {
            for g in gs {
                walk_depths(g, depth, max_used);
            }
        }
        Formula::Implies(a, b) | Formula::Iff(a, b) => {
            walk_depths(a, depth, max_used);
            walk_depths(b, depth, max_used);
        }
        Formula::Exists { x, body } | Formula::Forall { x, body } => {
            // Unbounded quantifiers roam the whole domain; distance from
            // the root is not meaningful, so they re-anchor at 0.
            let saved = depth.insert(*x, 0);
            walk_depths(body, depth, max_used);
            restore(depth, *x, saved);
        }
        Formula::ExistsAdj { x, anchor, body } | Formula::ForallAdj { x, anchor, body } => {
            let d = depth.get(anchor).copied().unwrap_or(0) + 1;
            let saved = depth.insert(*x, d);
            walk_depths(body, depth, max_used);
            restore(depth, *x, saved);
        }
        Formula::ExistsNear {
            x,
            anchor,
            radius,
            body,
        }
        | Formula::ForallNear {
            x,
            anchor,
            radius,
            body,
        } => {
            let d = depth.get(anchor).copied().unwrap_or(0) + radius;
            let saved = depth.insert(*x, d);
            walk_depths(body, depth, max_used);
            restore(depth, *x, saved);
        }
    }
}

fn restore(depth: &mut BTreeMap<FoVar, usize>, x: FoVar, saved: Option<usize>) {
    match saved {
        Some(d) => {
            depth.insert(x, d);
        }
        None => {
            depth.remove(&x);
        }
    }
}

/// The variable-flow radius: the largest distance from the matrix root at
/// which a variable is actually *used* in an atom. Always at most the
/// syntactic [`Sentence::radius`] (which sums nesting depths whether or
/// not the chain of anchors reaches an atom).
pub fn flow_radius(sentence: &Sentence) -> usize {
    let mut depth = BTreeMap::new();
    if let Matrix::Lfo { x, .. } = &sentence.matrix {
        depth.insert(*x, 0);
    }
    let mut max_used = 0;
    walk_depths(sentence.matrix.body(), &mut depth, &mut max_used);
    max_used
}

/// `FRM006` — semantic hierarchy level: eliminating dead quantifier
/// blocks must not change the registered level. When it does, the claim
/// describes the syntax, not the property — the sentence provably lives
/// at the inferred level.
pub fn check_semantic_level(a: &SentenceArtifact) -> Vec<Diagnostic> {
    let inferred = infer_level(&a.sentence).to_string();
    if inferred == a.claimed_level {
        return Vec::new();
    }
    vec![Diagnostic::proof(
        "FRM006",
        a.artifact(),
        format!(
            "claimed level {} but dead-binder elimination infers {inferred}",
            a.claimed_level
        ),
    )
    .with_suggestion(
        "re-register the sentence at the inferred level, or make every \
                      quantifier block reach the matrix",
    )]
}

/// `FRM007` — radius flow: a claimed visibility radius below the
/// variable-flow radius is refuted (some atom provably looks further),
/// while one above the syntactic radius overstates what the matrix can
/// see.
pub fn check_radius_flow(a: &SentenceArtifact) -> Vec<Diagnostic> {
    let Some(claimed) = a.claimed_radius else {
        return Vec::new();
    };
    let flow = flow_radius(&a.sentence);
    let syntactic = a.sentence.radius();
    let mut out = Vec::new();
    if claimed < flow {
        out.push(
            Diagnostic::proof(
                "FRM007",
                a.artifact(),
                format!(
                    "claimed radius {claimed} but an atom uses a variable at flow \
                     distance {flow} from the root"
                ),
            )
            .with_suggestion(format!("raise the claimed radius to {flow}")),
        );
    }
    if claimed > syntactic {
        out.push(
            Diagnostic::warning(
                "FRM007",
                a.artifact(),
                format!(
                    "claimed radius {claimed} exceeds the syntactic radius {syntactic}; \
                     the matrix cannot see that far"
                ),
            )
            .with_suggestion(format!("lower the claimed radius to {syntactic}")),
        );
    }
    out
}

/// `FRM008` — prefix normal form: adjacent non-empty blocks with the same
/// quantifier should be one block; split blocks are level-neutral (the
/// level computation merges them) but misstate the alternation structure
/// to readers.
pub fn check_prefix_normal_form(a: &SentenceArtifact) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let nonempty: Vec<_> = a
        .sentence
        .blocks
        .iter()
        .filter(|b| !b.vars.is_empty())
        .collect();
    for pair in nonempty.windows(2) {
        if pair[0].quantifier == pair[1].quantifier {
            out.push(
                Diagnostic::warning(
                    "FRM008",
                    a.artifact(),
                    format!(
                        "adjacent {} blocks are not merged; the prefix is not in normal form",
                        pair[0].quantifier
                    ),
                )
                .with_suggestion("merge the blocks into one"),
            );
        }
    }
    out
}

/// Runs every sentence flow rule over one artifact.
pub fn check_sentence(a: &SentenceArtifact) -> Vec<Diagnostic> {
    let mut out = check_semantic_level(a);
    out.extend(check_radius_flow(a));
    out.extend(check_prefix_normal_form(a));
    out
}
