//! The bytecode translation validator (rules `VM001`–`VM004`): a static
//! verifier for the compiled execution tier that certifies a
//! [`CompiledTm`] dispatch program against its source transition table
//! and re-derives the Lemma 10 step/space polynomials *from the bytecode
//! alone*.
//!
//! The compiled tier (see `lph-machine`'s `bytecode` module) is the hot
//! path: serve answers membership queries by running the VM, not the
//! interpreter. Until now its only evidence was differential testing.
//! This module closes the trust chain statically, one translation
//! obligation per rule:
//!
//! * `VM001` (dispatch translation) — every source entry must sit at its
//!   dense-dispatch index `q · 125 + s₀ · 25 + s₁ · 5 + s₂` with the
//!   exact same successor, writes, and moves. A mis-indexed or mangled
//!   op would silently execute the wrong transition.
//! * `VM002` (halt-sentinel coverage) — the program must have exactly
//!   `|Q| · 125` slots, every populated slot must correspond to a source
//!   entry, and every sourceless slot must hold the *canonical* halt
//!   sentinel (blank writes, all-stay moves, no skip). A sentinel
//!   replaced by a live op would keep running where the interpreter
//!   reports `MissingTransition`.
//! * `VM003` (skip soundness) — the run-length fast path may only be
//!   flagged on an op that is provably step-metering-equivalent to its
//!   unrolled loop: a self-loop (`next` = own state) with identity
//!   writes (`write` = the slot's scanned triple) moving exactly the
//!   flagged head right and the others not at all. Under exactly these
//!   conditions a `k`-cell jump charging `k` steps is observationally
//!   identical to `k` iterations of the loop; any other flagged op would
//!   corrupt step metering (and so the metrics the flow tier bounds).
//! * `VM004` (certified bounds) — rebuild the abstract transition table
//!   from the dispatch program (trusting nothing but the bytecode), run
//!   the same blank-zone/SCC flow core as the interpreter tier, and
//!   require the two derived step/space polynomials to dominate each
//!   other ([`PolyBound::dominates`] both ways, i.e. agree as bounds).
//!   This is the translation-validation counterpart of `DTM009`: the
//!   polynomial serve prices compiled queries with is derived from what
//!   actually runs.
//!
//! All four rules carry [`proof` severity](crate::Severity::Proof): each
//! firing is a statically checkable witness that the compiled program
//! diverges from its source semantics. [`verify_bytecode`] bundles the
//! four checks; [`check_bytecode`] is the corpus entry point (compile
//! then verify); [`analyze_bytecode`] exposes the bytecode-derived
//! [`MachineFlow`] for serve admission.

use lph_graphs::PolyBound;
use lph_machine::{CompiledTm, DistributedTm, Move, Sym};

use crate::diagnostic::Diagnostic;
use crate::dtm::DtmArtifact;
use crate::flow::machine::{analyze_table, Entry, MachineFlow, TableView};

/// Pretty-prints a scanned triple the way `MachineError` does.
fn triple(scanned: [Sym; 3]) -> String {
    let [a, b, c] = scanned.map(Sym::as_char);
    format!("({a}, {b}, {c})")
}

/// Rebuilds the abstract transition table from the dispatch program
/// alone — deliberately *not* consulting the source machine — so the
/// flow core's verdict is about what the VM would execute.
fn table_of_bytecode(ct: &CompiledTm) -> TableView {
    let mut entries = Vec::new();
    for slot in 0..ct.program_len() {
        let op = ct.op_view(slot);
        let Some(next) = op.next else { continue };
        let (q, scanned) = CompiledTm::decode_slot(slot);
        entries.push(Entry {
            q,
            scanned,
            next,
            write: op.write,
            moves: op.moves,
        });
    }
    TableView {
        entries,
        start: ct.start_state(),
        pause: ct.pause_state(),
        stop: ct.stop_state(),
        state_names: (0..ct.state_count())
            .map(|q| ct.state_name(q).to_owned())
            .collect(),
    }
}

/// Derives the Lemma 10 step/space bounds directly from a dispatch
/// program, via the same blank-zone/SCC core as [`super::analyze`].
pub fn analyze_bytecode(ct: &CompiledTm) -> MachineFlow {
    analyze_table(&table_of_bytecode(ct))
}

/// `VM001` — dispatch translation: every source entry must be lowered
/// to its dense-dispatch slot with an identical payload.
pub fn check_dispatch_translation(
    artifact: &str,
    tm: &DistributedTm,
    ct: &CompiledTm,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (q, scanned, t) in tm.transitions() {
        let slot = CompiledTm::slot_of(q.0, scanned);
        let Some(op) = (slot < ct.program_len()).then(|| ct.op_view(slot)) else {
            out.push(Diagnostic::proof(
                "VM001",
                artifact,
                format!(
                    "source entry ({}, {}) has no dispatch slot: the program ends at {} slots",
                    tm.state_name(q),
                    triple(scanned),
                    ct.program_len(),
                ),
            ));
            continue;
        };
        if op.next != Some(t.next.0) || op.write != t.write || op.moves != t.moves {
            out.push(
                Diagnostic::proof(
                    "VM001",
                    artifact,
                    format!(
                        "dispatch slot {slot} for ({}, {}) does not translate its source entry: \
                         the VM would execute a different transition than the interpreter",
                        tm.state_name(q),
                        triple(scanned),
                    ),
                )
                .with_suggestion("recompile the program from the source table"),
            );
        }
    }
    out
}

/// `VM002` — halt-sentinel coverage: the program is exactly `|Q| · 125`
/// slots, populated slots are backed by source entries, and sourceless
/// slots hold the canonical sentinel.
pub fn check_halt_coverage(artifact: &str, tm: &DistributedTm, ct: &CompiledTm) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if ct.program_len() != tm.state_count() * 125 {
        out.push(Diagnostic::proof(
            "VM002",
            artifact,
            format!(
                "dispatch program has {} slots; {} states require {}",
                ct.program_len(),
                tm.state_count(),
                tm.state_count() * 125,
            ),
        ));
        return out;
    }
    let sourced: std::collections::BTreeSet<usize> = tm
        .transitions()
        .map(|(q, scanned, _)| CompiledTm::slot_of(q.0, scanned))
        .collect();
    for slot in 0..ct.program_len() {
        if sourced.contains(&slot) {
            continue;
        }
        let op = ct.op_view(slot);
        let (q, scanned) = CompiledTm::decode_slot(slot);
        if op.next.is_some() {
            out.push(
                Diagnostic::proof(
                    "VM002",
                    artifact,
                    format!(
                        "slot {slot} for ({}, {}) holds a live op but the source table has no \
                         entry there: the VM would keep running where the interpreter halts \
                         with MissingTransition",
                        ct.state_name(q),
                        triple(scanned),
                    ),
                )
                .with_suggestion("restore the halt sentinel (recompile from the source table)"),
            );
        } else if op.write != [Sym::Blank; 3] || op.moves != [Move::S; 3] || op.skip.is_some() {
            out.push(Diagnostic::proof(
                "VM002",
                artifact,
                format!(
                    "slot {slot} for ({}, {}) is a halt sentinel with a non-canonical payload",
                    ct.state_name(q),
                    triple(scanned),
                ),
            ));
        }
    }
    out
}

/// `VM003` — skip soundness: every run-length annotation must satisfy
/// the eligibility predicate that makes the fast path step-metering
/// equivalent to the unrolled self-loop.
pub fn check_skip_soundness(artifact: &str, ct: &CompiledTm) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for slot in 0..ct.program_len() {
        let op = ct.op_view(slot);
        let Some(t) = op.skip else { continue };
        let (q, scanned) = CompiledTm::decode_slot(slot);
        let sound = t < 3
            && op.next == Some(q)
            && op.write == scanned
            && (0..3).all(|i| op.moves[i] == if i == t { Move::R } else { Move::S });
        if !sound {
            out.push(
                Diagnostic::proof(
                    "VM003",
                    artifact,
                    format!(
                        "slot {slot} for ({}, {}) flags tape {t} for the run-length fast path \
                         but is not a one-head-right identity self-loop: a k-cell jump charging \
                         k steps is not equivalent to k iterations of this op",
                        ct.state_name(q),
                        triple(scanned),
                    ),
                )
                .with_suggestion(
                    "only self-loops with identity writes and exactly one R-move may carry a \
                     skip annotation",
                ),
            );
        }
    }
    out
}

/// `VM004` — certified bounds: the step/space polynomials derived from
/// the bytecode must agree (mutual domination) with the interpreter-tier
/// bounds in `flow`.
pub fn check_bytecode_bounds(
    artifact: &str,
    ct: &CompiledTm,
    flow: &MachineFlow,
) -> Vec<Diagnostic> {
    let bc = analyze_bytecode(ct);
    let mut out = Vec::new();
    let cases: [(&str, &Option<PolyBound>, &Option<PolyBound>); 2] = [
        ("step", &bc.steps, &flow.steps),
        ("space", &bc.space, &flow.space),
    ];
    for (what, from_bytecode, from_table) in cases {
        match (from_bytecode, from_table) {
            (Some(b), Some(t)) if b.dominates(t) && t.dominates(b) => {}
            (Some(b), Some(t)) => {
                out.push(Diagnostic::proof(
                    "VM004",
                    artifact,
                    format!(
                        "bytecode-derived per-round {what} bound {b} disagrees with the \
                         table-derived bound {t}: the compiled program does not execute the \
                         certified machine",
                    ),
                ));
            }
            (None, Some(t)) => {
                out.push(Diagnostic::proof(
                    "VM004",
                    artifact,
                    format!(
                        "no per-round {what} certificate derivable from the bytecode ({}), but \
                         the source table certifies {t}",
                        bc.failure.as_deref().unwrap_or("no certificate derived"),
                    ),
                ));
            }
            (Some(b), None) => {
                out.push(Diagnostic::proof(
                    "VM004",
                    artifact,
                    format!(
                        "bytecode derives a per-round {what} bound {b} but the source table \
                         admits no certificate: the translation changed the machine's loops",
                    ),
                ));
            }
            (None, None) => {}
        }
    }
    out
}

/// Runs all four translation-validation rules against an explicit
/// compiled program — the entry point for mutation fixtures and for
/// serve, which verifies the exact `CompiledTm` it is about to execute.
pub fn verify_bytecode(
    artifact: &str,
    tm: &DistributedTm,
    ct: &CompiledTm,
    flow: &MachineFlow,
) -> Vec<Diagnostic> {
    let mut out = check_dispatch_translation(artifact, tm, ct);
    out.extend(check_halt_coverage(artifact, tm, ct));
    out.extend(check_skip_soundness(artifact, ct));
    out.extend(check_bytecode_bounds(artifact, ct, flow));
    out
}

/// Corpus entry point: compile the artifact's machine and verify the
/// result. An unmutated compilation must come back clean — anything
/// else is a miscompilation witness.
pub fn check_bytecode(a: &DtmArtifact) -> Vec<Diagnostic> {
    let ct = CompiledTm::compile(&a.tm);
    verify_bytecode(&a.artifact(), &a.tm, &ct, a.flow())
}
