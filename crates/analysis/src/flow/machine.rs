//! The machine dataflow engine (rules `DTM007`–`DTM010`): fixpoint
//! reachability over a *blank-zone product* abstraction of a
//! [`DistributedTm`], plus a recursive SCC certificate that derives a
//! static per-round step/space upper bound — the Lemma 10 polynomial —
//! and checks it against the bound the artifact claims.
//!
//! # The blank-zone product
//!
//! Abstract configurations are pairs `(state, zone)` where `zone[i]`
//! holds for a *read-only* tape `i` (no entry writes anything but what it
//! scanned there) when the head sits in the all-blank region beyond the
//! tape's content. The round semantics initialize the receiving and
//! internal tapes without embedded blanks (`λ#id#κ̄` and `msg#…#`), so on
//! a read-only tape "scanned `□`" implies "everything rightward is `□`",
//! and the zone bit is exact: it is set after scanning `□` without moving
//! left, cleared otherwise, and while set the only admissible scan is
//! `□`. This refinement kills the spurious static cycles that wildcard
//! catch-all rules introduce (entries scanning `#` or bits in a region
//! that is provably blank), which is what makes the SCC decomposition
//! below fine enough to certify the corpus machines.
//!
//! # The step certificate
//!
//! Per abstract SCC `C`, `cost(C)` bounds the steps of one maximal visit
//! (entering once, leaving once), as a [`PolyBound`] in the round's input
//! length `n = input_rcv_len + input_int_len`:
//!
//! * no internal edge — `cost = 1` (just the exit step);
//! * every internal edge rewinds one common tape `d` (`L` on `d`, `S`
//!   elsewhere) — `cost = 1`, and the loop steps are *discounted*: heads
//!   never move left of cell 0, so over a whole round the `L`-moves on
//!   `d` are at most the `R`-moves on `d`, all of which happen at steps
//!   the other cases already count (a rewind SCC never moves right);
//! * otherwise pick a *stable*, `L`-free-in-`C` tape `j` and remove the
//!   internal edges that consume it (move `R` scanning non-blank): a
//!   visit makes at most `n + 1` consuming steps (the head only moves
//!   right on `j` inside `C`, and a stable tape never grows new
//!   non-blank cells mid-round, so consuming steps hit distinct cells of
//!   the at most `n + 1` initially non-blank ones), separating at most
//!   `n + 2` excursions through the sub-SCCs of the remaining graph:
//!   `cost = (n + 2) · (1 + Σ cost(C'))`.
//!
//! Summing over the condensation (each SCC is visited at most once per
//! round) and multiplying by `1 + #discount tapes` for the rewind
//! discount yields the certified per-round step bound; the space bound
//! adds the initial tape contents to three cells per step.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use lph_graphs::PolyBound;
use lph_machine::{DistributedTm, Move, Sym};

use crate::diagnostic::Diagnostic;
use crate::dtm::DtmArtifact;

/// One expanded transition entry.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Entry {
    pub(crate) q: usize,
    pub(crate) scanned: [Sym; 3],
    pub(crate) next: usize,
    pub(crate) write: [Sym; 3],
    pub(crate) moves: [Move; 3],
}

/// A transition table abstracted away from its carrier: the shared input
/// of the flow core, buildable both from a [`DistributedTm`] (this
/// module) and from a rebuilt `CompiledTm` dispatch program (the
/// `flow::bytecode` verifier, which must *not* trust the source table).
pub(crate) struct TableView {
    pub(crate) entries: Vec<Entry>,
    pub(crate) start: usize,
    pub(crate) pause: usize,
    pub(crate) stop: usize,
    pub(crate) state_names: Vec<String>,
}

impl TableView {
    fn state_name(&self, q: usize) -> &str {
        self.state_names
            .get(q)
            .map_or("<unknown state>", String::as_str)
    }
}

fn table_of(tm: &DistributedTm) -> TableView {
    TableView {
        entries: tm
            .transitions()
            .map(|(q, scanned, t)| Entry {
                q: q.0,
                scanned,
                next: t.next.0,
                write: t.write,
                moves: t.moves,
            })
            .collect(),
        start: tm.start().0,
        pause: tm.pause().0,
        stop: tm.stop().0,
        state_names: tm.states().map(|q| tm.state_name(q).to_owned()).collect(),
    }
}

/// An abstract configuration: `(state, blank-zone bit per tape)`.
type Prod = (usize, [bool; 3]);

/// The result of the machine dataflow analysis (computed once per
/// artifact and cached; see [`DtmArtifact::flow`]).
#[derive(Debug, Clone)]
pub struct MachineFlow {
    /// States some abstract configuration reaches.
    pub reachable: BTreeSet<usize>,
    /// Whether an admissible entry transitions into `q_stop`.
    pub stop_reachable: bool,
    /// Whether an admissible entry transitions into `q_pause`.
    pub pause_reachable: bool,
    /// Certified per-round step bound in `n = input_rcv_len +
    /// input_int_len`, when a certificate exists.
    pub steps: Option<PolyBound>,
    /// Per-round space bound derived from the step bound (initial
    /// contents plus three touched cells per step).
    pub space: Option<PolyBound>,
    /// Why no step certificate exists, when `steps` is `None`.
    pub failure: Option<String>,
}

/// Which tapes every entry leaves untouched (`write == scanned`).
fn read_only_tapes(entries: &[Entry]) -> [bool; 3] {
    let mut ro = [true; 3];
    for e in entries {
        for (i, tape_ro) in ro.iter_mut().enumerate() {
            if e.write[i] != e.scanned[i] {
                *tape_ro = false;
            }
        }
    }
    ro
}

/// Whether the entry is admissible from the zone bits: a set zone only
/// admits blank scans on its tape.
fn admits(zone: [bool; 3], e: &Entry) -> bool {
    (0..3).all(|i| !zone[i] || e.scanned[i] == Sym::Blank)
}

/// The zone bits after firing `e` (read-only tapes only; others stay
/// out of the abstraction).
fn zone_after(ro: [bool; 3], e: &Entry) -> [bool; 3] {
    let mut z = [false; 3];
    for i in 0..3 {
        z[i] = ro[i] && e.scanned[i] == Sym::Blank && e.moves[i] != Move::L;
    }
    z
}

/// The admissible abstract transition graph: nodes are product states,
/// edges are entry firings.
struct FlowGraph {
    nodes: Vec<Prod>,
    index: BTreeMap<Prod, usize>,
    /// `(from, entry index, to)`.
    edges: Vec<(usize, usize, usize)>,
    fired: Vec<bool>,
}

fn explore(view: &TableView) -> FlowGraph {
    let entries = &view.entries;
    let ro = read_only_tapes(entries);
    let mut by_state: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for (i, e) in entries.iter().enumerate() {
        by_state.entry(e.q).or_default().push(i);
    }
    let start: Prod = (view.start, [false; 3]);
    let mut g = FlowGraph {
        nodes: vec![start],
        index: BTreeMap::from([(start, 0)]),
        edges: Vec::new(),
        fired: vec![false; entries.len()],
    };
    let mut queue = VecDeque::from([0usize]);
    while let Some(pi) = queue.pop_front() {
        let (q, zone) = g.nodes[pi];
        if q == view.pause || q == view.stop {
            continue;
        }
        for &ei in by_state.get(&q).into_iter().flatten() {
            let e = &entries[ei];
            if !admits(zone, e) {
                continue;
            }
            g.fired[ei] = true;
            let succ: Prod = (e.next, zone_after(ro, e));
            let si = *g.index.entry(succ).or_insert_with(|| {
                g.nodes.push(succ);
                queue.push_back(g.nodes.len() - 1);
                g.nodes.len() - 1
            });
            g.edges.push((pi, ei, si));
        }
    }
    g
}

/// Tarjan's SCC algorithm (iterative), returning components in reverse
/// topological order of the condensation.
fn sccs(node_count: usize, edges: &[(usize, usize, usize)]) -> Vec<Vec<usize>> {
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); node_count];
    for &(a, _, b) in edges {
        adj[a].push(b);
    }
    let mut index = vec![usize::MAX; node_count];
    let mut low = vec![0usize; node_count];
    let mut on_stack = vec![false; node_count];
    let mut stack = Vec::new();
    let mut out = Vec::new();
    let mut counter = 0;
    for root in 0..node_count {
        if index[root] != usize::MAX {
            continue;
        }
        // call stack: (node, next child position)
        let mut calls = vec![(root, 0usize)];
        while let Some(&mut (v, ref mut ci)) = calls.last_mut() {
            if *ci == 0 {
                index[v] = counter;
                low[v] = counter;
                counter += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if let Some(&w) = adj[v].get(*ci) {
                *ci += 1;
                if index[w] == usize::MAX {
                    calls.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                if low[v] == index[v] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    out.push(comp);
                }
                calls.pop();
                if let Some(&mut (p, _)) = calls.last_mut() {
                    low[p] = low[p].min(low[v]);
                }
            }
        }
    }
    out
}

/// Tapes on which no admissible mid-round entry turns a blank cell
/// non-blank (entries into `q_stop` are exempt: nothing runs after
/// them within the round). On a stable tape the set of non-blank cells
/// never grows, so it stays within the `≤ n + 1` initially non-blank
/// ones.
fn stable_tapes(view: &TableView, g: &FlowGraph) -> [bool; 3] {
    let mut stable = [true; 3];
    for (ei, e) in view.entries.iter().enumerate() {
        if !g.fired[ei] || e.next == view.stop {
            continue;
        }
        for (i, tape_stable) in stable.iter_mut().enumerate() {
            if e.scanned[i] == Sym::Blank && e.write[i] != Sym::Blank {
                *tape_stable = false;
            }
        }
    }
    stable
}

/// The per-visit step cost of one SCC, plus the discount tapes used by
/// rewind sub-SCCs. `None` when no certificate case applies.
fn scc_cost(
    comp: &BTreeSet<usize>,
    intra: &[(usize, usize, usize)],
    entries: &[Entry],
    stable: [bool; 3],
    discounts: &mut BTreeSet<usize>,
) -> Option<PolyBound> {
    if intra.is_empty() {
        return Some(PolyBound::constant(1));
    }
    // Pure rewind: every internal edge moves L on one common tape and
    // stays elsewhere; iterations are bounded by the round's R-moves on
    // that tape (discounted globally).
    for d in 0..3 {
        let pure = intra.iter().all(|&(_, ei, _)| {
            let m = entries[ei].moves;
            m[d] == Move::L && (0..3).all(|j| j == d || m[j] == Move::S)
        });
        if pure {
            discounts.insert(d);
            return Some(PolyBound::constant(1));
        }
    }
    // Consuming tape: stable, never moved left inside the SCC, with at
    // least one consuming edge to remove.
    for j in 0..3 {
        if !stable[j]
            || intra
                .iter()
                .any(|&(_, ei, _)| entries[ei].moves[j] == Move::L)
        {
            continue;
        }
        let (removed, kept): (Vec<_>, Vec<_>) = intra.iter().partition(|&&(_, ei, _)| {
            entries[ei].moves[j] == Move::R && entries[ei].scanned[j] != Sym::Blank
        });
        if removed.is_empty() {
            continue;
        }
        // Renumber the component for the sub-SCC pass.
        let order: Vec<usize> = comp.iter().copied().collect();
        let rank: BTreeMap<usize, usize> = order.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        let sub_edges: Vec<(usize, usize, usize)> = kept
            .iter()
            .map(|&&(a, ei, b)| (rank[&a], ei, rank[&b]))
            .collect();
        let mut total = PolyBound::constant(0);
        let mut ok = true;
        for sub in sccs(order.len(), &sub_edges) {
            let sub_set: BTreeSet<usize> = sub.iter().copied().collect();
            let sub_intra: Vec<(usize, usize, usize)> = sub_edges
                .iter()
                .filter(|&&(a, _, b)| sub_set.contains(&a) && sub_set.contains(&b))
                .copied()
                .collect();
            match scc_cost(&sub_set, &sub_intra, entries, stable, discounts) {
                Some(c) => total = total.add(&c),
                None => {
                    ok = false;
                    break;
                }
            }
        }
        if ok {
            // (n + 2) · (1 + Σ sub costs): ≤ n + 1 consuming steps plus
            // one exit step, and ≤ n + 2 excursions through the sub-DAG.
            return Some(PolyBound::linear(2, 1).mul(&PolyBound::constant(1).add(&total)));
        }
    }
    None
}

/// Runs the dataflow analysis over one machine.
pub fn analyze(tm: &DistributedTm) -> MachineFlow {
    analyze_table(&table_of(tm))
}

/// Runs the dataflow analysis over an abstract transition table — the
/// carrier-independent core shared with the bytecode verifier.
pub(crate) fn analyze_table(view: &TableView) -> MachineFlow {
    let g = explore(view);
    let reachable: BTreeSet<usize> = g.nodes.iter().map(|&(q, _)| q).collect();
    let stop_reachable = reachable.contains(&view.stop) && view.stop != view.start;
    let pause_reachable = reachable.contains(&view.pause);

    let stable = stable_tapes(view, &g);
    let mut discounts = BTreeSet::new();
    let mut total = PolyBound::constant(0);
    let mut failure = None;
    for comp in sccs(g.nodes.len(), &g.edges) {
        let set: BTreeSet<usize> = comp.iter().copied().collect();
        let intra: Vec<(usize, usize, usize)> = g
            .edges
            .iter()
            .filter(|&&(a, _, b)| set.contains(&a) && set.contains(&b))
            .copied()
            .collect();
        match scc_cost(&set, &intra, &view.entries, stable, &mut discounts) {
            Some(c) => total = total.add(&c),
            None => {
                let names: Vec<&str> = set
                    .iter()
                    .map(|&p| view.state_name(g.nodes[p].0))
                    .collect::<BTreeSet<_>>()
                    .into_iter()
                    .collect();
                failure = Some(format!(
                    "no consuming-tape certificate for the cycle through [{}]",
                    names.join(", ")
                ));
                break;
            }
        }
    }
    let (steps, space) = match failure {
        Some(_) => (None, None),
        None => {
            let factor = PolyBound::constant(1 + discounts.len() as u64);
            let steps = total.mul(&factor);
            // Initial contents (≤ n symbols plus three markers) plus at
            // most three fresh cells per step.
            let space = PolyBound::linear(3, 1).add(&steps.mul(&PolyBound::constant(3)));
            (Some(steps), Some(space))
        }
    };
    MachineFlow {
        reachable,
        stop_reachable,
        pause_reachable,
        steps,
        space,
        failure,
    }
}

/// `DTM007` — semantically unreachable states: syntactically reachable
/// (so `DTM002` is silent) but reached by no abstract configuration;
/// the entries leading into them scan symbols that can never be under
/// the head there.
pub fn check_flow_reachability(a: &DtmArtifact) -> Vec<Diagnostic> {
    let flow = a.flow();
    let syntactic = crate::dtm::reachable_states(&a.tm);
    let mut out = Vec::new();
    for q in a.tm.states() {
        let designated = [a.tm.start(), a.tm.pause(), a.tm.stop()].contains(&q);
        if !designated && syntactic.contains(&q.0) && !flow.reachable.contains(&q.0) {
            out.push(
                Diagnostic::warning(
                    "DTM007",
                    a.artifact(),
                    format!(
                        "state `{}` is syntactically reachable but no abstract configuration \
                         reaches it (every entry into it scans inside a provably blank region)",
                        a.tm.state_name(q)
                    ),
                )
                .with_suggestion("the transitions into this state can never fire; remove them"),
            );
        }
    }
    out
}

/// `DTM008` — semantic halting: some admissible entry must reach
/// `q_stop` (for single-round machines) or at least end the round via
/// `q_stop`/`q_pause` (for multi-round ones). Syntactic reachability
/// (`DTM005`) is necessary but not sufficient.
pub fn check_flow_halting(a: &DtmArtifact) -> Vec<Diagnostic> {
    let flow = a.flow();
    let mut out = Vec::new();
    if a.single_round && !flow.stop_reachable {
        out.push(
            Diagnostic::error(
                "DTM008",
                a.artifact(),
                "no abstract configuration reaches q_stop: the machine can never halt",
            )
            .with_suggestion(
                "check the scan patterns on the path to q_stop against the \
                              round's tape contents",
            ),
        );
    }
    if !a.single_round && !flow.stop_reachable && !flow.pause_reachable {
        out.push(Diagnostic::error(
            "DTM008",
            a.artifact(),
            "no abstract configuration reaches q_stop or q_pause: no round can ever end",
        ));
    }
    out
}

/// `DTM009` — certified Lemma 10 bounds: when the artifact claims
/// per-round step/space polynomials, the flow-derived bounds must be
/// dominated by them (the claim must be at least as large, everywhere).
pub fn check_certified_bounds(a: &DtmArtifact) -> Vec<Diagnostic> {
    let flow = a.flow();
    let mut out = Vec::new();
    let cases = [
        ("step", &a.claimed_steps, &flow.steps),
        ("space", &a.claimed_space, &flow.space),
    ];
    for (what, claimed, derived) in cases {
        let Some(claimed) = claimed else { continue };
        match derived {
            Some(derived) if claimed.dominates(derived) => {}
            Some(derived) => {
                out.push(
                    Diagnostic::proof(
                        "DTM009",
                        a.artifact(),
                        format!(
                            "claimed per-round {what} bound {claimed} does not dominate the \
                             certified bound {derived}",
                        ),
                    )
                    .with_suggestion(format!("raise the claim to at least {derived}")),
                );
            }
            None => {
                out.push(Diagnostic::proof(
                    "DTM009",
                    a.artifact(),
                    format!(
                        "claimed per-round {what} bound {claimed} cannot be certified: {}",
                        flow.failure.as_deref().unwrap_or("no certificate derived"),
                    ),
                ));
            }
        }
    }
    out
}

/// `DTM010` — certificate coverage: the engine derived no polynomial
/// step certificate at all. Such a machine may still terminate, but
/// nothing static vouches for Lemma 10's local-polynomial discipline.
pub fn check_step_certificate(a: &DtmArtifact) -> Vec<Diagnostic> {
    let flow = a.flow();
    match &flow.failure {
        Some(reason) => vec![Diagnostic::warning(
            "DTM010",
            a.artifact(),
            format!("no per-round step certificate derivable: {reason}"),
        )
        .with_suggestion(
            "make every loop either rewind a single tape or consume a tape it never writes \
             blanks back onto",
        )],
        None => Vec::new(),
    }
}

/// Runs every machine flow rule over one artifact.
pub fn check_machine(a: &DtmArtifact) -> Vec<Diagnostic> {
    let mut out = check_flow_reachability(a);
    out.extend(check_flow_halting(a));
    out.extend(check_certified_bounds(a));
    out.extend(check_step_certificate(a));
    out
}
