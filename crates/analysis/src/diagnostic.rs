//! The shared diagnostic type every lint rule emits.

use std::fmt;

/// How serious a diagnostic is.
///
/// `Error` means the artifact violates a property the paper's definitions
/// require (the corpus must never ship one); `Warning` flags likely
/// authoring mistakes; `Note` is informational. `Proof` is the semantic
/// tier's verdict: a statically *derived* fact (a certified step bound, an
/// inferred hierarchy level, a composed output-size polynomial)
/// contradicts a registered claim. A `Proof` finding outranks an `Error`
/// in the sort order because it comes with a derivation, not a replay:
/// no probe choice or configuration can make it go away, so it fails the
/// lint run just as an `Error` does.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational.
    Note,
    /// Probable authoring mistake.
    Warning,
    /// Definition-level violation.
    Error,
    /// A statically derived refutation of a registered claim.
    Proof,
}

impl Severity {
    /// The lowercase name used in text and JSON output.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
            Severity::Proof => "proof",
        }
    }

    /// Parses the lowercase name back into a severity.
    pub fn parse(s: &str) -> Option<Severity> {
        match s {
            "note" => Some(Severity::Note),
            "warning" => Some(Severity::Warning),
            "error" => Some(Severity::Error),
            "proof" => Some(Severity::Proof),
            _ => None,
        }
    }

    /// Whether this severity fails a lint run (`Error` and `Proof`).
    pub fn is_failure(self) -> bool {
        self >= Severity::Error
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One finding of a lint rule over one artifact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The rule code, e.g. `DTM001` (see [`crate::registry::RULES`]).
    pub code: String,
    /// The finding's severity (after configuration is applied).
    pub severity: Severity,
    /// The artifact the finding is about, e.g. `dtm:all_selected_decider`.
    pub artifact: String,
    /// What is wrong.
    pub message: String,
    /// How to fix it, when the rule can tell.
    pub suggestion: Option<String>,
}

impl Diagnostic {
    /// An error-severity diagnostic.
    pub fn error(
        code: &str,
        artifact: impl Into<String>,
        message: impl Into<String>,
    ) -> Diagnostic {
        Diagnostic {
            code: code.to_owned(),
            severity: Severity::Error,
            artifact: artifact.into(),
            message: message.into(),
            suggestion: None,
        }
    }

    /// A warning-severity diagnostic.
    pub fn warning(
        code: &str,
        artifact: impl Into<String>,
        message: impl Into<String>,
    ) -> Diagnostic {
        Diagnostic {
            severity: Severity::Warning,
            ..Diagnostic::error(code, artifact, message)
        }
    }

    /// A note-severity diagnostic.
    pub fn note(code: &str, artifact: impl Into<String>, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            severity: Severity::Note,
            ..Diagnostic::error(code, artifact, message)
        }
    }

    /// A proof-severity diagnostic (a derived refutation of a claim).
    pub fn proof(
        code: &str,
        artifact: impl Into<String>,
        message: impl Into<String>,
    ) -> Diagnostic {
        Diagnostic {
            severity: Severity::Proof,
            ..Diagnostic::error(code, artifact, message)
        }
    }

    /// Attaches a fix suggestion.
    #[must_use]
    pub fn with_suggestion(mut self, s: impl Into<String>) -> Diagnostic {
        self.suggestion = Some(s.into());
        self
    }
}

impl fmt::Display for Diagnostic {
    /// `error[DTM001] dtm:echo: message` plus an indented suggestion line.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {}: {}",
            self.severity, self.code, self.artifact, self.message
        )?;
        if let Some(s) = &self.suggestion {
            write!(f, "\n    suggestion: {s}")?;
        }
        Ok(())
    }
}

/// Orders diagnostics for stable output: most severe first, then by
/// artifact, code, and message.
pub fn sort_diagnostics(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| {
        b.severity
            .cmp(&a.severity)
            .then_with(|| a.artifact.cmp(&b.artifact))
            .then_with(|| a.code.cmp(&b.code))
            .then_with(|| a.message.cmp(&b.message))
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_shows_code_artifact_and_suggestion() {
        let d = Diagnostic::warning("DTM002", "dtm:echo", "state `x` is unreachable")
            .with_suggestion("remove the state");
        let s = d.to_string();
        assert!(s.starts_with("warning[DTM002] dtm:echo: state"));
        assert!(s.contains("suggestion: remove the state"));
    }

    #[test]
    fn severity_round_trips_through_names() {
        for sev in [
            Severity::Note,
            Severity::Warning,
            Severity::Error,
            Severity::Proof,
        ] {
            assert_eq!(Severity::parse(sev.as_str()), Some(sev));
        }
        assert_eq!(Severity::parse("fatal"), None);
    }

    #[test]
    fn sorting_puts_proofs_and_errors_first() {
        let mut ds = vec![
            Diagnostic::note("A", "z", "n"),
            Diagnostic::error("B", "a", "e"),
            Diagnostic::proof("D", "q", "p"),
            Diagnostic::warning("C", "m", "w"),
        ];
        sort_diagnostics(&mut ds);
        let sevs: Vec<Severity> = ds.iter().map(|d| d.severity).collect();
        assert_eq!(
            sevs,
            vec![
                Severity::Proof,
                Severity::Error,
                Severity::Warning,
                Severity::Note
            ]
        );
    }

    #[test]
    fn failure_severities_are_error_and_above() {
        assert!(Severity::Proof.is_failure());
        assert!(Severity::Error.is_failure());
        assert!(!Severity::Warning.is_failure());
        assert!(!Severity::Note.is_failure());
    }
}
