//! Proof-carrying game claims (rules `SAT001`–`SAT003`) and the
//! `lph-proof/1` serialization of solver refutations.
//!
//! PR 6's CDCL backend decides certificate games far past the exhaustive
//! ceiling, and since the proof-logging work every `Unsat` answer comes
//! back with a [`RefutationEvidence`] verdict from the independent RUP
//! checker (`lph_sat::checker`). This module surfaces that trust chain
//! through the lint registry: corpus arbiters may register [`GameClaim`]s
//! — concrete instances with an expected winner — and the analyzer
//! re-decides each claim with the CDCL backend, demanding that
//!
//! * the verdict matches the claim and any UNSAT-side verdict carries a
//!   checker-**accepted** refutation (`SAT001`, `proof` severity);
//! * the logged proof is about the formula it claims to refute — no
//!   unknown variables, no deletions of absent clauses (`SAT002`);
//! * a claim is never asserted past an exhausted solver budget
//!   (`SAT003`).
//!
//! Serialization follows the `lph-trace/1` pattern: [`proof_to_json`]
//! renders a [`ProofLog`] as canonical `lph-proof/1` JSON (DIMACS-style
//! signed literals), and [`proof_from_json`] parses it back, rejecting
//! malformed documents with a description.

use lph_core::{
    decide_game_backend, GameBackend, GameError, GameLimits, GameResult, RefutationEvidence,
};
use lph_graphs::{IdAssignment, LabeledGraph};
use lph_sat::{Lit, ProofLog, ProofStep};

use crate::contract::ArbiterArtifact;
use crate::diagnostic::Diagnostic;
use crate::json::Json;

/// The `lph-proof/1` schema tag.
pub const PROOF_SCHEMA: &str = "lph-proof/1";

/// A concrete game instance an arbiter claims to win or lose.
///
/// Attached to an [`ArbiterArtifact`] via
/// [`ArbiterArtifact::with_game_claims`]; checked by
/// [`check_game_claims`].
pub struct GameClaim {
    /// Short instance name used in diagnostics, e.g. `"odd 5-cycle"`.
    pub instance: String,
    /// The labeled input the game is played on.
    pub graph: LabeledGraph,
    /// The claimed outcome: `true` = Eve has a winning strategy.
    pub expected_eve_wins: bool,
    /// Budgets for the decision procedure.
    pub limits: GameLimits,
}

impl GameClaim {
    /// A claim under [`GameLimits::default`].
    pub fn new(instance: &str, graph: LabeledGraph, expected_eve_wins: bool) -> GameClaim {
        GameClaim {
            instance: instance.to_owned(),
            graph,
            expected_eve_wins,
            limits: GameLimits::default(),
        }
    }

    /// Overrides the decision budgets.
    #[must_use]
    pub fn with_limits(mut self, limits: GameLimits) -> GameClaim {
        self.limits = limits;
        self
    }
}

/// Diagnostics for one decided game against its claim: `SAT001` when the
/// verdict contradicts the claim or rests on a refutation the checker
/// rejected for derivation reasons, `SAT002` when the rejection says the
/// proof is about a different formula.
///
/// Exposed separately from [`check_game_claims`] so synthetic
/// [`GameResult`]s can pin each firing shape without a solver in the
/// loop.
pub fn evidence_diagnostics(
    artifact: &str,
    instance: &str,
    expected_eve_wins: bool,
    result: &GameResult,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if result.eve_wins != expected_eve_wins {
        let (want, got) = if expected_eve_wins {
            ("Eve", "Adam")
        } else {
            ("Adam", "Eve")
        };
        out.push(Diagnostic::proof(
            "SAT001",
            artifact,
            format!("game claim on {instance}: claimed {want} wins, the backend decided {got}"),
        ));
    }
    match &result.refutation {
        Some(RefutationEvidence::Unchecked {
            cnf_mismatch: true,
            reason,
        }) => {
            out.push(
                Diagnostic::proof(
                    "SAT002",
                    artifact,
                    format!("refutation for {instance} is about a different formula: {reason}"),
                )
                .with_suggestion("the proof log and the game CNF disagree; neither can be trusted"),
            );
        }
        Some(RefutationEvidence::Unchecked {
            cnf_mismatch: false,
            reason,
        }) => {
            out.push(
                Diagnostic::proof(
                    "SAT001",
                    artifact,
                    format!("refutation for {instance} failed its RUP check: {reason}"),
                )
                .with_suggestion("an UNSAT-side verdict must carry a checker-accepted refutation"),
            );
        }
        Some(RefutationEvidence::Checked { .. }) | None => {}
    }
    out
}

/// Re-decides every registered [`GameClaim`] with [`GameBackend::Cdcl`]
/// and reports `SAT001`–`SAT003` findings at `proof` severity. Arbiters
/// without claims produce nothing.
pub fn check_game_claims(a: &ArbiterArtifact) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if a.game_claims.is_empty() {
        return out;
    }
    let _span = lph_trace::span("analysis/proofcheck");
    let artifact = a.artifact();
    for claim in &a.game_claims {
        let id = IdAssignment::global(&claim.graph);
        match decide_game_backend(
            &a.arbiter,
            &claim.graph,
            &id,
            &claim.limits,
            GameBackend::Cdcl,
        ) {
            Ok(result) => out.extend(evidence_diagnostics(
                &artifact,
                &claim.instance,
                claim.expected_eve_wins,
                &result,
            )),
            Err(GameError::BudgetExceeded { limit }) => {
                out.push(
                    Diagnostic::proof(
                        "SAT003",
                        &artifact,
                        format!(
                            "game claim on {} exhausted the solver budget of {limit} \
                             conflicts without a verdict",
                            claim.instance
                        ),
                    )
                    .with_suggestion("raise GameLimits::max_runs or shrink the claimed instance"),
                );
            }
            Err(e) => {
                out.push(Diagnostic::proof(
                    "SAT001",
                    &artifact,
                    format!(
                        "game claim on {} could not be decided by the CDCL backend: {e}",
                        claim.instance
                    ),
                ));
            }
        }
    }
    out
}

/// Serializes a proof trace as canonical `lph-proof/1` JSON: a `schema`
/// tag plus one `{op, lits}` object per step, literals in DIMACS
/// convention (variable `v` is `v + 1`, negation is the sign).
pub fn proof_to_json(proof: &ProofLog) -> Json {
    let steps: Vec<Json> = proof
        .steps()
        .iter()
        .map(|s| {
            let (op, lits) = match s {
                ProofStep::Add(c) => ("add", c),
                ProofStep::Delete(c) => ("delete", c),
            };
            let lits: Vec<Json> = lits
                .iter()
                .map(|l| {
                    let dimacs = (l.var() + 1) as f64;
                    Json::Num(if l.is_pos() { dimacs } else { -dimacs })
                })
                .collect();
            Json::Obj(vec![
                ("op".to_owned(), Json::Str(op.to_owned())),
                ("lits".to_owned(), Json::Arr(lits)),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("schema".to_owned(), Json::Str(PROOF_SCHEMA.to_owned())),
        ("steps".to_owned(), Json::Arr(steps)),
    ])
}

/// Parses an `lph-proof/1` document back into a [`ProofLog`].
///
/// # Errors
///
/// Returns a description when the schema tag, a step shape, or a literal
/// is malformed (zero, fractional, or out of range).
pub fn proof_from_json(v: &Json) -> Result<ProofLog, String> {
    match v.get("schema").and_then(Json::as_str) {
        Some(PROOF_SCHEMA) => {}
        Some(other) => return Err(format!("unsupported proof schema {other:?}")),
        None => return Err("missing schema tag".to_owned()),
    }
    let steps = v
        .get("steps")
        .and_then(Json::as_arr)
        .ok_or("missing steps array")?;
    let mut out = Vec::with_capacity(steps.len());
    for (i, step) in steps.iter().enumerate() {
        let op = step
            .get("op")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("step {i}: missing op"))?;
        let lits = step
            .get("lits")
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("step {i}: missing lits"))?;
        let mut clause = Vec::with_capacity(lits.len());
        for l in lits {
            let Json::Num(x) = l else {
                return Err(format!("step {i}: literal is not a number"));
            };
            let n = *x as i64;
            if n as f64 != *x || n == 0 || n.unsigned_abs() > u64::from(u32::MAX >> 1) {
                return Err(format!("step {i}: invalid DIMACS literal {x}"));
            }
            clause.push(Lit::with_sign(n.unsigned_abs() as usize - 1, n > 0));
        }
        out.push(match op {
            "add" => ProofStep::Add(clause),
            "delete" => ProofStep::Delete(clause),
            other => return Err(format!("step {i}: unknown op {other:?}")),
        });
    }
    Ok(ProofLog::from_steps(out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lph_sat::{Cnf, SolveOutcome, Solver, SolverConfig};

    #[test]
    fn solver_proofs_round_trip_through_lph_proof_1() {
        // A real refutation: clashing implication chains.
        let mut cnf = Cnf::new();
        let vars: Vec<usize> = (0..4).map(|_| cnf.new_var()).collect();
        for w in vars.windows(2) {
            cnf.add_clause([Lit::neg(w[0]), Lit::pos(w[1])]);
        }
        cnf.add_clause([Lit::pos(vars[0])]);
        cnf.add_clause([Lit::neg(vars[3])]);
        let mut solver = Solver::with_config(
            &cnf,
            SolverConfig {
                proof_log: true,
                ..SolverConfig::default()
            },
        );
        assert_eq!(solver.solve(), SolveOutcome::Unsat);
        let proof = solver.take_proof().expect("logging on");
        let doc = proof_to_json(&proof);
        assert_eq!(doc.get("schema").and_then(Json::as_str), Some(PROOF_SCHEMA));
        let text = doc.emit();
        let parsed = Json::parse(&text).expect("emitted JSON parses");
        let back = proof_from_json(&parsed).expect("round trip");
        assert_eq!(back, proof);
        lph_sat::check_refutation(&cnf, &back).expect("deserialized proof still checks");
    }

    #[test]
    fn delete_steps_and_signs_survive_the_round_trip() {
        let mut log = ProofLog::new();
        log.push_add(vec![Lit::pos(0), Lit::neg(2)]);
        log.push_delete(vec![Lit::neg(0)]);
        log.push_add(vec![]);
        let back = proof_from_json(&proof_to_json(&log)).unwrap();
        assert_eq!(back, log);
    }

    #[test]
    fn malformed_documents_are_rejected_with_a_reason() {
        let missing = Json::Obj(vec![]);
        assert!(proof_from_json(&missing).unwrap_err().contains("schema"));
        let wrong = Json::parse(r#"{"schema":"lph-proof/9","steps":[]}"#).unwrap();
        assert!(proof_from_json(&wrong).unwrap_err().contains("lph-proof/9"));
        let zero =
            Json::parse(r#"{"schema":"lph-proof/1","steps":[{"op":"add","lits":[0]}]}"#).unwrap();
        assert!(proof_from_json(&zero).unwrap_err().contains("literal"));
        let frac =
            Json::parse(r#"{"schema":"lph-proof/1","steps":[{"op":"add","lits":[1.5]}]}"#).unwrap();
        assert!(proof_from_json(&frac).unwrap_err().contains("literal"));
        let op = Json::parse(r#"{"schema":"lph-proof/1","steps":[{"op":"resolve","lits":[]}]}"#)
            .unwrap();
        assert!(proof_from_json(&op).unwrap_err().contains("resolve"));
    }
}
