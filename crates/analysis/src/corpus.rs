//! The built-in corpus: every hand-built machine, example sentence,
//! arbiter, and reduction shipped by the workspace, wrapped as artifacts
//! with the claims stated in their documentation.
//!
//! `lph-lint` runs the full rule set over [`builtin`]; the tier-1 test
//! `tests/lint_corpus.rs` asserts the result is empty.
//!
//! Only *formal artifacts* — objects carrying paper-level claims —
//! register here. Infrastructure (`lph-runtime`, `lph-trace`) registers
//! nothing: tracing instruments several corpus reductions, but a
//! recorder has no claim a lint rule could recompute, and the
//! instrumented reductions stay lint-clean with tracing on or off.

use lph_core::arbiters;
use lph_graphs::{generators, IdAssignment, LabeledGraph, PolyBound};
use lph_logic::examples;
use lph_machine::machines;
use lph_reductions::{
    apply,
    cook_levin::{lfo_to_sat_graph, LfoToSatGraph},
    eulerian::AllSelectedToEulerian,
    hamiltonian::{AllSelectedToHamiltonian, NotAllSelectedToHamiltonian},
    sat_to_three_sat::SatGraphToThreeSatGraph,
    three_col::ThreeSatGraphToThreeColorable,
};

use crate::contract::{self, ArbiterArtifact, ClusterMapArtifact, ReductionArtifact};
use crate::diagnostic::{sort_diagnostics, Diagnostic};
use crate::dtm::{self, DtmArtifact};
use crate::formula::{self, SentenceArtifact};
use crate::proofcheck::GameClaim;
use crate::registry::RuleConfig;

/// Every artifact the analyzer ships with.
pub struct Corpus {
    /// Hand-built distributed Turing machines.
    pub dtms: Vec<DtmArtifact>,
    /// Example sentences with their hierarchy claims.
    pub sentences: Vec<SentenceArtifact>,
    /// Arbiters with class claims and probe inputs.
    pub arbiters: Vec<ArbiterArtifact>,
    /// Local reductions with probe inputs.
    pub reductions: Vec<ReductionArtifact>,
    /// Hand-presented cluster maps (empty in the built-in corpus; the
    /// reductions' maps are derived from probes).
    pub cluster_maps: Vec<ClusterMapArtifact>,
}

/// Small `{0,1}`-labeled probe inputs for selected-style artifacts.
///
/// Every probe satisfies [`crate::flow::reduction_domain_ok`]: the
/// Eulerian/Hamiltonian gadget reductions need every node to have an
/// incident edge to anchor their gadgets (`RED003` enforces this on any
/// probe set handed to those reductions).
fn selected_probes() -> Vec<LabeledGraph> {
    let probes = vec![
        generators::labeled_cycle(&["1", "1", "1"]),
        generators::labeled_path(&["1", "0"]),
    ];
    debug_assert!(probes.iter().all(crate::flow::reduction_domain_ok));
    probes
}

/// A well-formed `SAT-GRAPH` probe, produced by the Theorem 19 reduction
/// itself (the only shipped producer of that labeling).
fn sat_graph_probe() -> LabeledGraph {
    let g = generators::labeled_cycle(&["1", "1", "1"]);
    let id = IdAssignment::global(&g);
    let (sat_g, _) = lfo_to_sat_graph(&examples::all_selected(), &g, &id)
        .expect("Theorem 19 reduction on a well-formed probe");
    sat_g
}

/// A well-formed `3-SAT-GRAPH` probe (Tseytin applied to the SAT probe).
fn three_sat_graph_probe() -> LabeledGraph {
    let sat_g = sat_graph_probe();
    let id = IdAssignment::global(&sat_g);
    let (three_g, _) = apply(&SatGraphToThreeSatGraph, &sat_g, &id)
        .expect("Tseytin reduction on a well-formed probe");
    three_g
}

/// The built-in corpus, with the claims stated in each artifact's
/// documentation.
pub fn builtin() -> Corpus {
    // The step/space claims below are checked against the abstract
    // interpreter's derived certificates by `DTM009`: each claim must
    // dominate what `crate::flow::machine::analyze` derives (the
    // coefficients are the derived ones, rounded up). The radius claims
    // are likewise pinched between the variable-flow radius and the
    // syntactic radius by `FRM007`.
    let dtms = vec![
        DtmArtifact::new(
            "all_selected_decider",
            machines::all_selected_decider(),
            true,
        )
        .with_bounds(PolyBound::linear(128, 32), PolyBound::linear(384, 100)),
        DtmArtifact::new(
            "proper_coloring_verifier",
            machines::proper_coloring_verifier(),
            false,
        )
        .with_bounds(
            PolyBound::new(vec![128, 60, 4]),
            PolyBound::new(vec![384, 170, 12]),
        ),
        DtmArtifact::new("echo_machine", machines::echo_machine(), false)
            .with_bounds(PolyBound::linear(96, 24), PolyBound::linear(256, 80)),
        DtmArtifact::new("even_degree_decider", machines::even_degree_decider(), true)
            .with_bounds(PolyBound::linear(96, 28), PolyBound::linear(256, 90)),
        DtmArtifact::new(
            "project_label_machine",
            machines::project_label_machine(),
            true,
        )
        .with_bounds(PolyBound::linear(64, 16), PolyBound::linear(128, 50)),
    ];
    let sentences = vec![
        SentenceArtifact::new("all_selected", examples::all_selected(), "Σ0 = Π0").with_radius(2),
        SentenceArtifact::new("three_colorable", examples::three_colorable(), "Σ1")
            .monadic()
            .with_radius(2),
        SentenceArtifact::new("two_colorable", examples::k_colorable(2), "Σ1")
            .monadic()
            .with_radius(2),
        SentenceArtifact::new("not_all_selected", examples::not_all_selected(), "Σ3")
            .with_radius(3),
        SentenceArtifact::new("non_three_colorable", examples::non_three_colorable(), "Π4")
            .with_radius(3),
        SentenceArtifact::new("hamiltonian", examples::hamiltonian(), "Σ5").with_radius(4),
        SentenceArtifact::new("non_hamiltonian", examples::non_hamiltonian(), "Π4").with_radius(4),
    ];
    let arbiters = vec![
        ArbiterArtifact::new(arbiters::all_selected_decider(), "Σ0", 1)
            .with_probes(selected_probes()),
        ArbiterArtifact::new(arbiters::eulerian_decider(), "Σ0", 1)
            .with_probes(vec![generators::cycle(4), generators::complete(3)]),
        ArbiterArtifact::new(arbiters::three_colorable_verifier(), "Σ1", 2)
            .with_probes(vec![generators::cycle(4), generators::complete(3)]),
        ArbiterArtifact::new(arbiters::two_colorable_verifier(), "Σ1", 2)
            .with_probes(vec![generators::cycle(4), generators::path(3)])
            // Σ₁-no claim: an odd cycle is not 2-colorable, so the CDCL
            // backend must refute Eve's witness search — and `SAT001`
            // demands the refutation pass the independent RUP checker.
            .with_game_claims(vec![
                GameClaim::new("odd 5-cycle (not 2-colorable)", generators::cycle(5), false),
                GameClaim::new("even 4-cycle (2-colorable)", generators::cycle(4), true),
            ]),
        ArbiterArtifact::new(arbiters::sat_graph_verifier(), "Σ1", 2)
            .with_probes(vec![sat_graph_probe()]),
        ArbiterArtifact::new(arbiters::all_selected_pi1(), "Π1", 1)
            .with_probes(selected_probes())
            // Π₁-yes claim: on an all-selected cycle Adam has no
            // refutation, so Eve's win *is* an UNSAT answer — the
            // deliberately-unsatisfiable instance that pins the checked
            // refutation path. The partially-selected path is the SAT
            // side (Adam's rejection play is found and replayed).
            .with_game_claims(vec![
                GameClaim::new(
                    "all-selected 5-cycle (Adam has no play)",
                    generators::labeled_cycle(&["1", "1", "1", "1", "1"]),
                    true,
                ),
                GameClaim::new(
                    "partially-selected 2-path",
                    generators::labeled_path(&["1", "0"]),
                    false,
                ),
            ]),
        ArbiterArtifact::new(arbiters::not_all_selected_sigma3(), "Σ3", 2)
            .with_probes(selected_probes()),
        ArbiterArtifact::new(arbiters::distance_to_unselected_verifier(2), "Σ1", 2)
            .with_probes(selected_probes()),
        ArbiterArtifact::new(arbiters::pointer_to_unselected_verifier(), "Σ1", 2)
            .with_probes(selected_probes()),
    ];
    let reductions = vec![
        ReductionArtifact::new(Box::new(AllSelectedToEulerian), selected_probes()),
        ReductionArtifact::new(Box::new(AllSelectedToHamiltonian), selected_probes()),
        ReductionArtifact::new(Box::new(NotAllSelectedToHamiltonian), selected_probes()),
        ReductionArtifact::new(
            Box::new(LfoToSatGraph::new(examples::all_selected())),
            selected_probes(),
        ),
        ReductionArtifact::new(
            Box::new(LfoToSatGraph::new(examples::three_colorable())),
            selected_probes(),
        ),
        ReductionArtifact::new(Box::new(SatGraphToThreeSatGraph), vec![sat_graph_probe()]),
        ReductionArtifact::new(
            Box::new(ThreeSatGraphToThreeColorable),
            vec![three_sat_graph_probe()],
        ),
    ];
    Corpus {
        dtms,
        sentences,
        arbiters,
        reductions,
        cluster_maps: Vec::new(),
    }
}

/// Runs every rule over a corpus, applies the configuration, and sorts
/// the surviving diagnostics for stable output.
///
/// Each artifact is checked independently, so the walk fans the rule
/// replays out over the `lph-runtime` worker pool, one artifact at a
/// time, concatenating per-artifact diagnostics in corpus order — the
/// diagnostic stream is byte-identical to the sequential walk even before
/// the final severity sort.
pub fn run(corpus: &Corpus, config: &RuleConfig) -> Vec<Diagnostic> {
    run_with(corpus, config, false)
}

/// Runs every rule *plus* the semantic tier ([`crate::flow`]) over a
/// corpus: the five dataflow engines fan over the worker pool like the
/// syntactic rules do, each timed under its own `lph-trace` span
/// (`analysis/flow/{machine,sentence,reduction,bytecode,plan}`).
pub fn run_deep(corpus: &Corpus, config: &RuleConfig) -> Vec<Diagnostic> {
    run_with(corpus, config, true)
}

fn run_with(corpus: &Corpus, config: &RuleConfig, deep: bool) -> Vec<Diagnostic> {
    let mut diags = lph_runtime::par_flat_map(&corpus.dtms, dtm::check_all);
    diags.extend(lph_runtime::par_flat_map(
        &corpus.sentences,
        formula::check_all,
    ));
    diags.extend(lph_runtime::par_flat_map(
        &corpus.arbiters,
        contract::check_arbiter,
    ));
    diags.extend(lph_runtime::par_flat_map(
        &corpus.reductions,
        contract::check_reduction,
    ));
    diags.extend(lph_runtime::par_flat_map(
        &corpus.cluster_maps,
        contract::check_cluster_map,
    ));
    if deep {
        {
            let _span = lph_trace::span("analysis/flow/machine");
            diags.extend(lph_runtime::par_flat_map(
                &corpus.dtms,
                crate::flow::machine::check_machine,
            ));
        }
        {
            let _span = lph_trace::span("analysis/flow/sentence");
            diags.extend(lph_runtime::par_flat_map(
                &corpus.sentences,
                crate::flow::sentence::check_sentence,
            ));
        }
        {
            let _span = lph_trace::span("analysis/flow/reduction");
            diags.extend(lph_runtime::par_flat_map(
                &corpus.reductions,
                crate::flow::reduction::check_reduction_flow,
            ));
        }
        {
            let _span = lph_trace::span("analysis/flow/bytecode");
            diags.extend(lph_runtime::par_flat_map(
                &corpus.dtms,
                crate::flow::bytecode::check_bytecode,
            ));
        }
        {
            let _span = lph_trace::span("analysis/flow/plan");
            diags.extend(lph_runtime::par_flat_map(
                &corpus.sentences,
                crate::flow::plan::check_plan,
            ));
        }
    }
    let mut diags = config.apply(diags);
    sort_diagnostics(&mut diags);
    diags
}

/// Runs every rule over the built-in corpus.
pub fn run_builtin(config: &RuleConfig) -> Vec<Diagnostic> {
    run(&builtin(), config)
}

/// Runs every rule plus the semantic tier over the built-in corpus
/// (`lph-lint --analyze`).
pub fn run_builtin_deep(config: &RuleConfig) -> Vec<Diagnostic> {
    run_deep(&builtin(), config)
}
