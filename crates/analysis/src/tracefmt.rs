//! Serialization and validation of `lph-trace` snapshots as the
//! `lph-trace/1` JSON schema, on the workspace's own [`Json`] type.
//!
//! The document shape:
//!
//! ```json
//! {"schema":"lph-trace/1",
//!  "spans":[{"name":"machine/run_tm","count":12,"total_ns":48211,"max_ns":9001}],
//!  "counters":[{"name":"machine/steps","value":1234}],
//!  "series":[{"name":"lemma10/steps","points":[[6,16],[18,58]]}],
//!  "hists":[{"name":"machine/round_steps","count":24,"sum":480,
//!            "buckets":[[4,20],[5,4]]}]}
//! ```
//!
//! Every section is sorted by name and every series by point — a
//! *structural* guarantee of [`lph_trace::snapshot`] that
//! [`validate_trace`] re-checks, so a valid document is also a canonical
//! one: two traces of the same deterministic workload are byte-identical.
//! `bench-gate --validate-trace` and the `trace-smoke` CI stage run the
//! validator over the output of `experiments --trace-out`.

use lph_trace::Snapshot;

use crate::json::Json;

/// Serializes a trace snapshot as an `lph-trace/1` document.
pub fn trace_to_json(snap: &Snapshot) -> Json {
    let num = |n: u64| Json::Num(n as f64);
    let spans = snap
        .spans
        .iter()
        .map(|sp| {
            Json::Obj(vec![
                ("name".into(), Json::Str(sp.name.clone())),
                ("count".into(), num(sp.count)),
                ("total_ns".into(), num(sp.total_ns)),
                ("max_ns".into(), num(sp.max_ns)),
            ])
        })
        .collect();
    let counters = snap
        .counters
        .iter()
        .map(|c| {
            Json::Obj(vec![
                ("name".into(), Json::Str(c.name.clone())),
                ("value".into(), num(c.value)),
            ])
        })
        .collect();
    let series = snap
        .series
        .iter()
        .map(|s| {
            Json::Obj(vec![
                ("name".into(), Json::Str(s.name.clone())),
                (
                    "points".into(),
                    Json::Arr(
                        s.points
                            .iter()
                            .map(|&(x, y)| Json::Arr(vec![num(x), num(y)]))
                            .collect(),
                    ),
                ),
            ])
        })
        .collect();
    let hists = snap
        .hists
        .iter()
        .map(|h| {
            Json::Obj(vec![
                ("name".into(), Json::Str(h.name.clone())),
                ("count".into(), num(h.count)),
                ("sum".into(), num(h.sum)),
                (
                    "buckets".into(),
                    Json::Arr(
                        h.buckets
                            .iter()
                            .map(|&(i, c)| Json::Arr(vec![num(u64::from(i)), num(c)]))
                            .collect(),
                    ),
                ),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("schema".into(), Json::Str("lph-trace/1".into())),
        ("spans".into(), Json::Arr(spans)),
        ("counters".into(), Json::Arr(counters)),
        ("series".into(), Json::Arr(series)),
        ("hists".into(), Json::Arr(hists)),
    ])
}

/// Per-section entry counts of a validated trace document.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceStats {
    /// Number of span aggregates.
    pub spans: usize,
    /// Number of counters.
    pub counters: usize,
    /// Number of series.
    pub series: usize,
    /// Number of histograms.
    pub hists: usize,
}

fn str_field(entry: &Json, key: &str) -> Result<String, String> {
    entry
        .get(key)
        .and_then(Json::as_str)
        .map(str::to_owned)
        .ok_or(format!("missing string field {key:?}"))
}

fn num_field(entry: &Json, key: &str) -> Result<f64, String> {
    match entry.get(key) {
        Some(Json::Num(n)) if *n >= 0.0 => Ok(*n),
        other => Err(format!(
            "field {key:?} must be a non-negative number, got {other:?}"
        )),
    }
}

/// A `[x, y]` pair of non-negative numbers.
fn pair(v: &Json) -> Result<(f64, f64), String> {
    match v.as_arr() {
        Some([Json::Num(a), Json::Num(b)]) if *a >= 0.0 && *b >= 0.0 => Ok((*a, *b)),
        _ => Err(format!(
            "expected a pair of non-negative numbers, got {v:?}"
        )),
    }
}

/// Extracts a named section and checks its entries' names are strictly
/// ascending (sorted and unique — the canonical-form guarantee).
fn section<'a>(doc: &'a Json, key: &str) -> Result<Vec<(String, &'a Json)>, String> {
    let items = doc
        .get(key)
        .and_then(Json::as_arr)
        .ok_or(format!("missing {key:?} array"))?;
    let mut out = Vec::with_capacity(items.len());
    for (i, entry) in items.iter().enumerate() {
        let name = str_field(entry, "name").map_err(|e| format!("{key}[{i}]: {e}"))?;
        if let Some((prev, _)) = out.last() {
            if *prev >= name {
                return Err(format!(
                    "{key}[{i}]: names not strictly ascending ({prev:?} then {name:?})"
                ));
            }
        }
        out.push((name, entry));
    }
    Ok(out)
}

/// Structurally validates an `lph-trace/1` document.
///
/// Checks the schema tag, the presence of all four sections, per-entry
/// field types, strictly ascending names per section, sorted series
/// points, and histogram bucket-count consistency.
///
/// # Errors
///
/// Returns a description of the first structural violation.
pub fn validate_trace(doc: &Json) -> Result<TraceStats, String> {
    match doc.get("schema").and_then(Json::as_str) {
        Some("lph-trace/1") => {}
        other => return Err(format!("unsupported schema {other:?}")),
    }
    let spans = section(doc, "spans")?;
    for (name, entry) in &spans {
        let context = |e: String| format!("span {name:?}: {e}");
        let count = num_field(entry, "count").map_err(context)?;
        let total = num_field(entry, "total_ns").map_err(context)?;
        let max = num_field(entry, "max_ns").map_err(context)?;
        if count < 1.0 || max > total {
            return Err(format!("span {name:?}: inconsistent statistics"));
        }
    }
    let counters = section(doc, "counters")?;
    for (name, entry) in &counters {
        num_field(entry, "value").map_err(|e| format!("counter {name:?}: {e}"))?;
    }
    let series = section(doc, "series")?;
    for (name, entry) in &series {
        let points = entry
            .get("points")
            .and_then(Json::as_arr)
            .ok_or(format!("series {name:?}: missing \"points\" array"))?;
        let mut prev: Option<(f64, f64)> = None;
        for (i, p) in points.iter().enumerate() {
            let p = pair(p).map_err(|e| format!("series {name:?} point {i}: {e}"))?;
            if let Some(q) = prev {
                if (p.0, p.1) < (q.0, q.1) {
                    return Err(format!("series {name:?}: points not sorted at index {i}"));
                }
            }
            prev = Some(p);
        }
    }
    let hists = section(doc, "hists")?;
    for (name, entry) in &hists {
        let context = |e: String| format!("hist {name:?}: {e}");
        let count = num_field(entry, "count").map_err(context)?;
        num_field(entry, "sum").map_err(|e| format!("hist {name:?}: {e}"))?;
        let buckets = entry
            .get("buckets")
            .and_then(Json::as_arr)
            .ok_or(format!("hist {name:?}: missing \"buckets\" array"))?;
        let mut total = 0.0;
        let mut prev_idx = -1.0f64;
        for (i, b) in buckets.iter().enumerate() {
            let (idx, c) = pair(b).map_err(|e| format!("hist {name:?} bucket {i}: {e}"))?;
            if idx <= prev_idx || idx > 64.0 {
                return Err(format!("hist {name:?}: bad bucket index at {i}"));
            }
            prev_idx = idx;
            total += c;
        }
        if (total - count).abs() > 0.5 {
            return Err(format!(
                "hist {name:?}: bucket counts sum to {total}, count says {count}"
            ));
        }
    }
    Ok(TraceStats {
        spans: spans.len(),
        counters: counters.len(),
        series: series.len(),
        hists: hists.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lph_trace::{Counter, Hist, Series, SpanStat};

    /// A hand-built snapshot (no global recorder state involved, so these
    /// tests cannot race the rest of the workspace's test threads).
    fn sample() -> Snapshot {
        Snapshot {
            spans: vec![SpanStat {
                name: "machine/run_tm".into(),
                count: 2,
                total_ns: 900,
                max_ns: 600,
            }],
            counters: vec![
                Counter {
                    name: "machine/steps".into(),
                    value: 77,
                },
                Counter {
                    name: "pool/chunks".into(),
                    value: 4,
                },
            ],
            series: vec![Series {
                name: "lemma10/steps".into(),
                points: vec![(6, 16), (18, 58)],
            }],
            hists: vec![Hist {
                name: "machine/round_steps".into(),
                count: 3,
                sum: 30,
                buckets: vec![(3, 1), (4, 2)],
            }],
        }
    }

    #[test]
    fn emits_the_documented_shape_and_validates() {
        let doc = trace_to_json(&sample());
        let text = doc.emit();
        assert!(text.starts_with(r#"{"schema":"lph-trace/1","spans":["#));
        let reparsed = Json::parse(&text).unwrap();
        let stats = validate_trace(&reparsed).unwrap();
        assert_eq!(
            stats,
            TraceStats {
                spans: 1,
                counters: 2,
                series: 1,
                hists: 1
            }
        );
    }

    #[test]
    fn emission_is_deterministic() {
        assert_eq!(
            trace_to_json(&sample()).emit(),
            trace_to_json(&sample()).emit()
        );
    }

    #[test]
    fn empty_snapshot_is_valid() {
        let doc = trace_to_json(&Snapshot::default());
        assert_eq!(
            validate_trace(&doc).unwrap(),
            TraceStats {
                spans: 0,
                counters: 0,
                series: 0,
                hists: 0
            }
        );
    }

    #[test]
    fn rejects_wrong_schema() {
        let doc = Json::parse(r#"{"schema":"lph-bench/1","spans":[]}"#).unwrap();
        assert!(validate_trace(&doc).unwrap_err().contains("schema"));
    }

    #[test]
    fn rejects_unsorted_names() {
        let mut snap = sample();
        snap.counters.swap(0, 1);
        let doc = trace_to_json(&snap);
        assert!(validate_trace(&doc)
            .unwrap_err()
            .contains("strictly ascending"));
    }

    #[test]
    fn rejects_unsorted_series_points() {
        let mut snap = sample();
        snap.series[0].points.reverse();
        let doc = trace_to_json(&snap);
        assert!(validate_trace(&doc).unwrap_err().contains("not sorted"));
    }

    #[test]
    fn rejects_inconsistent_histogram() {
        let mut snap = sample();
        snap.hists[0].count = 99;
        let doc = trace_to_json(&snap);
        assert!(validate_trace(&doc).unwrap_err().contains("bucket counts"));
    }

    #[test]
    fn rejects_span_max_above_total() {
        let mut snap = sample();
        snap.spans[0].max_ns = 9999;
        let doc = trace_to_json(&snap);
        assert!(validate_trace(&doc).unwrap_err().contains("inconsistent"));
    }

    #[test]
    fn rejects_missing_sections() {
        let doc = Json::parse(r#"{"schema":"lph-trace/1","spans":[]}"#).unwrap();
        assert!(validate_trace(&doc).unwrap_err().contains("counters"));
    }
}
