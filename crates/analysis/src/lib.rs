//! Rule-based static analysis over the workspace's formal artifacts —
//! distributed Turing machines, prenex second-order sentences, arbiters,
//! and local reductions.
//!
//! The repo's artifacts carry *claims* the type system cannot see: a
//! transition table claims to be total, a sentence claims to sit on level
//! `Σ3` of the local hierarchy, an arbiter claims to realize a `Σ1` game
//! in two rounds, a reduction claims to output valid cluster maps. Each
//! lint rule recomputes one such claim from first principles and emits a
//! [`Diagnostic`] when the artifact disagrees with itself.
//!
//! * [`dtm`] — transition-table rules `DTM001`–`DTM006` (totality,
//!   reachability, dead entries, left-end discipline, halting,
//!   non-termination).
//! * [`formula`] — sentence rules `FRM001`–`FRM005` (unused and shadowed
//!   variables, signature conformance, level/fragment claims,
//!   monadicity claims).
//! * [`contract`] — arbiter and reduction rules `ARB001`/`ARB002` and
//!   `RED001`/`RED002` (game-spec realization, metered rounds,
//!   cluster-map conditions).
//! * [`flow`] — the semantic tier: dataflow engines deriving machine
//!   reachability and certified Lemma 10 step/space bounds
//!   (`DTM007`–`DTM010`), semantic hierarchy levels and flow radii
//!   (`FRM006`–`FRM008`), symbolic reduction output-size bounds
//!   (`RED003`–`RED005`), and the compiled-tier translation validators
//!   certifying `CompiledTm` bytecode (`VM001`–`VM004`) and
//!   `CompiledSentence` plans (`PLN001`–`PLN003`), surfaced at the
//!   `Proof` severity.
//! * [`proofcheck`] — proof-carrying game claims (`SAT001`–`SAT003`):
//!   registered instances are re-decided by the CDCL backend, UNSAT-side
//!   verdicts must carry refutations accepted by the independent RUP
//!   checker, and proofs serialize as `lph-proof/1` JSON.
//! * [`registry`] — the rule table and allow/deny configuration.
//! * [`corpus`] — the built-in corpus of shipped artifacts; `lph-lint`
//!   runs the rules over it.
//! * [`json`] — a dependency-free JSON emitter/parser for `--format json`.
//! * [`tracefmt`] — the `lph-trace/1` schema: serialization and
//!   validation of execution-trace snapshots.
//! * [`servefmt`] — the `lph-serve/1` schema: structural validation of
//!   the query service's newline-delimited wire documents.
//!
//! # Example
//!
//! ```
//! use lph_analysis::{run_builtin, RuleConfig};
//!
//! // The shipped corpus is lint-clean.
//! let diags = run_builtin(&RuleConfig::new());
//! assert!(diags.is_empty(), "{diags:?}");
//! ```

#![forbid(unsafe_code)]

pub mod contract;
pub mod corpus;
pub mod diagnostic;
pub mod dtm;
pub mod flow;
pub mod formula;
pub mod json;
pub mod proofcheck;
pub mod registry;
pub mod servefmt;
pub mod tracefmt;

pub use contract::{ArbiterArtifact, ClusterMapArtifact, ReductionArtifact};
pub use corpus::{builtin, run, run_builtin, run_builtin_deep, run_deep, Corpus};
pub use diagnostic::{sort_diagnostics, Diagnostic, Severity};
pub use dtm::DtmArtifact;
pub use flow::{
    analyze_bytecode, plan_cost, reduction_domain_ok, verify_bytecode, verify_plan, MachineFlow,
};
pub use formula::SentenceArtifact;
pub use json::{diagnostics_from_json, diagnostics_to_json, Json};
pub use proofcheck::{
    check_game_claims, evidence_diagnostics, proof_from_json, proof_to_json, GameClaim,
    PROOF_SCHEMA,
};
pub use registry::{rule, RuleConfig, RuleInfo, RULES};
pub use servefmt::{
    validate_serve_request, validate_serve_response, SERVE_ERROR_CODES, SERVE_SCHEMA,
};
pub use tracefmt::{trace_to_json, validate_trace, TraceStats};
