//! Static checks over [`DistributedTm`] transition tables (rules
//! `DTM001`–`DTM006`).
//!
//! The checks work on the *expanded* table (the builder's wildcard rules
//! are already resolved to concrete `(state, Σ³)` entries), so they see
//! exactly what the interpreter in `lph_machine::run_tm` sees.
//!
//! The left-end–discipline rule (`DTM004`) runs a small abstract
//! interpretation tracking, per state and tape, whether the head can be on
//! cell 0 (the `⊢` cell). Wildcard-built machines contain many entries
//! that scan `⊢` but are dynamically dead — the head never returns to the
//! marker in that state — and the abstraction separates those from entries
//! that can really fire. The abstraction is sound (over-approximates
//! reachable head positions) as long as no entry writes `⊢` onto another
//! cell, which is itself checked first.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::OnceLock;

use lph_graphs::PolyBound;
use lph_machine::{DistributedTm, Move, StateId, Sym};

use crate::diagnostic::Diagnostic;
use crate::flow::machine::MachineFlow;

/// A distributed Turing machine plus the author's claims about it.
pub struct DtmArtifact {
    /// Corpus name (diagnostics are reported against `dtm:<name>`).
    pub name: String,
    /// The machine.
    pub tm: DistributedTm,
    /// Claimed to finish in a single round (never reach `q_pause`).
    pub single_round: bool,
    /// Claimed per-round step budget, if the author states one.
    pub step_budget: Option<usize>,
    /// Claimed per-round step bound as a polynomial in the round's input
    /// length (checked by `DTM009` against the flow-derived certificate).
    pub claimed_steps: Option<PolyBound>,
    /// Claimed per-round space bound, same convention as `claimed_steps`.
    pub claimed_space: Option<PolyBound>,
    /// Lazily computed dataflow analysis, shared by the `DTM007`–`DTM010`
    /// rules so the fixpoint runs once per artifact.
    flow_cache: OnceLock<MachineFlow>,
}

impl DtmArtifact {
    /// Wraps a machine with its claims.
    pub fn new(name: &str, tm: DistributedTm, single_round: bool) -> Self {
        DtmArtifact {
            name: name.to_owned(),
            tm,
            single_round,
            step_budget: None,
            claimed_steps: None,
            claimed_space: None,
            flow_cache: OnceLock::new(),
        }
    }

    /// Adds a claimed per-round step budget.
    #[must_use]
    pub fn with_step_budget(mut self, steps: usize) -> Self {
        self.step_budget = Some(steps);
        self
    }

    /// Adds claimed per-round step and space polynomials (Lemma 10's
    /// local-polynomial discipline, stated per machine).
    #[must_use]
    pub fn with_bounds(mut self, steps: PolyBound, space: PolyBound) -> Self {
        self.claimed_steps = Some(steps);
        self.claimed_space = Some(space);
        self
    }

    /// The machine's dataflow analysis, computed on first use and cached.
    pub fn flow(&self) -> &MachineFlow {
        self.flow_cache
            .get_or_init(|| crate::flow::machine::analyze(&self.tm))
    }

    pub(crate) fn artifact(&self) -> String {
        format!("dtm:{}", self.name)
    }
}

fn fmt_triple(s: [Sym; 3]) -> String {
    format!(
        "({}, {}, {})",
        s[0].as_char(),
        s[1].as_char(),
        s[2].as_char()
    )
}

/// States whose entries the interpreter can consult: everything reachable
/// from `q_start` in the state graph, minus `q_pause`/`q_stop` (the round
/// loop exits before scanning in either).
pub(crate) fn reachable_states(tm: &DistributedTm) -> BTreeSet<usize> {
    let mut succ: BTreeMap<usize, BTreeSet<usize>> = BTreeMap::new();
    for (q, _, t) in tm.transitions() {
        succ.entry(q.0).or_default().insert(t.next.0);
    }
    let mut seen = BTreeSet::from([tm.start().0]);
    let mut queue = VecDeque::from([tm.start().0]);
    while let Some(q) = queue.pop_front() {
        for &n in succ.get(&q).into_iter().flatten() {
            if seen.insert(n) {
                queue.push_back(n);
            }
        }
    }
    seen
}

/// `DTM001` — totality: every reachable computing state must have an entry
/// for each of the 125 symbol triples (the paper's `δ` is a total
/// function; a gap is a latent [`lph_machine::MachineError::MissingTransition`]).
pub fn check_totality(a: &DtmArtifact) -> Vec<Diagnostic> {
    let reachable = reachable_states(&a.tm);
    let mut present: BTreeMap<usize, usize> = BTreeMap::new();
    let mut example_missing: BTreeMap<usize, [Sym; 3]> = BTreeMap::new();
    for (q, scanned, _) in a.tm.transitions() {
        *present.entry(q.0).or_default() += 1;
        example_missing.remove(&q.0);
        let _ = scanned;
    }
    let mut out = Vec::new();
    for &q in &reachable {
        if q == a.tm.pause().0 || q == a.tm.stop().0 {
            continue;
        }
        let have = present.get(&q).copied().unwrap_or(0);
        if have < 125 {
            // Find one concrete missing triple for the message.
            let mut missing = None;
            'search: for s0 in Sym::ALL {
                for s1 in Sym::ALL {
                    for s2 in Sym::ALL {
                        if a.tm.step(StateId(q), [s0, s1, s2]).is_err() {
                            missing = Some([s0, s1, s2]);
                            break 'search;
                        }
                    }
                }
            }
            let triple = missing.map(fmt_triple).unwrap_or_default();
            out.push(
                Diagnostic::error(
                    "DTM001",
                    a.artifact(),
                    format!(
                        "state `{}` covers {have}/125 symbol triples; e.g. no entry for {triple}",
                        a.tm.state_name(StateId(q)),
                    ),
                )
                .with_suggestion(
                    "add a final catch-all rule ([Pat::Any; 3]) routing to the verdict epilogue",
                ),
            );
        }
    }
    out
}

/// `DTM002` — unreachable states, and `DTM003` — dead transitions (entries
/// of states the interpreter can never consult: unreachable states plus
/// `q_pause`/`q_stop`).
pub fn check_reachability(a: &DtmArtifact) -> Vec<Diagnostic> {
    let reachable = reachable_states(&a.tm);
    let mut out = Vec::new();
    for q in a.tm.states() {
        let designated = [a.tm.start(), a.tm.pause(), a.tm.stop()].contains(&q);
        if !designated && !reachable.contains(&q.0) {
            out.push(
                Diagnostic::warning(
                    "DTM002",
                    a.artifact(),
                    format!("state `{}` is unreachable from q_start", a.tm.state_name(q)),
                )
                .with_suggestion("remove the state or add a rule transitioning into it"),
            );
        }
    }
    let mut dead: BTreeMap<usize, usize> = BTreeMap::new();
    for (q, _, _) in a.tm.transitions() {
        let never_scans = q == a.tm.pause() || q == a.tm.stop() || !reachable.contains(&q.0);
        if never_scans {
            *dead.entry(q.0).or_default() += 1;
        }
    }
    for (q, count) in dead {
        out.push(
            Diagnostic::warning(
                "DTM003",
                a.artifact(),
                format!(
                    "{count} dead transition entr{} from `{}`, which never scans",
                    if count == 1 { "y" } else { "ies" },
                    a.tm.state_name(StateId(q)),
                ),
            )
            .with_suggestion("delete the rules declared for this state"),
        );
    }
    out
}

/// Per-tape head-position abstraction: can the head be on cell 0, can it
/// be elsewhere?
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct HeadAbs {
    at0: bool,
    beyond: bool,
}

impl HeadAbs {
    fn join(self, other: HeadAbs) -> HeadAbs {
        HeadAbs {
            at0: self.at0 || other.at0,
            beyond: self.beyond || other.beyond,
        }
    }
}

/// The abstractly reachable `(state, per-tape head abstraction)` pairs,
/// starting from `q_start` with all heads on cell 0. Entries scanning `⊢`
/// on tape `i` only apply when the abstraction admits `at0` there (sound
/// while no entry writes `⊢` elsewhere — checked by `DTM004` first).
type EntryTable = BTreeMap<(usize, [Sym; 3]), (StateId, [Sym; 3], [Move; 3])>;

fn head_abstraction(tm: &DistributedTm) -> BTreeMap<usize, [HeadAbs; 3]> {
    let mut table: EntryTable = BTreeMap::new();
    for (q, scanned, t) in tm.transitions() {
        table.insert((q.0, scanned), (t.next, t.write, t.moves));
    }
    let init = [HeadAbs {
        at0: true,
        beyond: false,
    }; 3];
    let mut best: BTreeMap<usize, [HeadAbs; 3]> = BTreeMap::from([(tm.start().0, init)]);
    let mut queue = VecDeque::from([tm.start().0]);
    while let Some(q) = queue.pop_front() {
        if q == tm.pause().0 || q == tm.stop().0 {
            continue;
        }
        let abs = best[&q];
        for (&(state, scanned), &(next, _write, moves)) in table.range((q, [Sym::LeftEnd; 3])..) {
            if state != q {
                break;
            }
            // Does the abstraction admit this scanned triple?
            let admitted = (0..3).all(|i| {
                if scanned[i] == Sym::LeftEnd {
                    abs[i].at0
                } else {
                    abs[i].beyond
                }
            });
            if !admitted {
                continue;
            }
            // Refine each head to the position the scan implies, then move.
            let mut succ = [HeadAbs {
                at0: false,
                beyond: false,
            }; 3];
            for i in 0..3 {
                let refined_at0 = scanned[i] == Sym::LeftEnd;
                succ[i] = match (moves[i], refined_at0) {
                    (Move::S, true) => HeadAbs {
                        at0: true,
                        beyond: false,
                    },
                    (Move::S, false) => HeadAbs {
                        at0: false,
                        beyond: true,
                    },
                    (Move::R, _) => HeadAbs {
                        at0: false,
                        beyond: true,
                    },
                    // L from cell 0 is a runtime error (flagged by DTM004);
                    // L from beyond may land on cell 0 or stay beyond.
                    (Move::L, true) => HeadAbs {
                        at0: true,
                        beyond: false,
                    },
                    (Move::L, false) => HeadAbs {
                        at0: true,
                        beyond: true,
                    },
                };
            }
            let merged = match best.get(&next.0) {
                Some(old) => [
                    old[0].join(succ[0]),
                    old[1].join(succ[1]),
                    old[2].join(succ[2]),
                ],
                None => succ,
            };
            if best.get(&next.0) != Some(&merged) {
                best.insert(next.0, merged);
                queue.push_back(next.0);
            }
        }
    }
    best
}

/// `DTM004` — left-end (and tape-alphabet) discipline:
///
/// * writing `⊢` onto a cell that did not scan `⊢` breaks the invariant
///   that the marker occupies exactly cell 0 (error — it also invalidates
///   every other static check);
/// * an abstractly reachable entry that scans `⊢` and overwrites it, or
///   scans `⊢` and moves left, is a latent `OverwroteLeftEnd` /
///   `HeadOffTape` runtime error (warning — the abstraction may
///   over-approximate).
pub fn check_tape_discipline(a: &DtmArtifact) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let tape_name = ["receiving", "internal", "sending"];
    for (q, scanned, t) in a.tm.transitions() {
        for i in 0..3 {
            if t.write[i] == Sym::LeftEnd && scanned[i] != Sym::LeftEnd {
                out.push(
                    Diagnostic::error(
                        "DTM004",
                        a.artifact(),
                        format!(
                            "entry ({}, {}) writes `⊢` onto the {} tape away from cell 0",
                            a.tm.state_name(q),
                            fmt_triple(scanned),
                            tape_name[i],
                        ),
                    )
                    .with_suggestion("only WriteOp::Keep may preserve the left-end marker"),
                );
            }
        }
    }
    if !out.is_empty() {
        // The abstraction below assumes marker discipline; don't pile
        // unsound findings on top of the closure violation.
        return out;
    }
    let abs = head_abstraction(&a.tm);
    for (q, scanned, t) in a.tm.transitions() {
        let Some(cfg) = abs.get(&q.0) else { continue };
        let admitted = (0..3).all(|i| {
            if scanned[i] == Sym::LeftEnd {
                cfg[i].at0
            } else {
                cfg[i].beyond
            }
        });
        if !admitted {
            continue;
        }
        for i in 0..3 {
            if scanned[i] != Sym::LeftEnd {
                continue;
            }
            if t.write[i] != Sym::LeftEnd {
                out.push(
                    Diagnostic::warning(
                        "DTM004",
                        a.artifact(),
                        format!(
                            "reachable entry ({}, {}) overwrites `⊢` on the {} tape",
                            a.tm.state_name(q),
                            fmt_triple(scanned),
                            tape_name[i],
                        ),
                    )
                    .with_suggestion("guard the rule with Pat::Not(Sym::LeftEnd)"),
                );
            }
            if t.moves[i] == Move::L {
                out.push(
                    Diagnostic::warning(
                        "DTM004",
                        a.artifact(),
                        format!(
                            "reachable entry ({}, {}) moves the {} head left of `⊢`",
                            a.tm.state_name(q),
                            fmt_triple(scanned),
                            tape_name[i],
                        ),
                    )
                    .with_suggestion("use Move::S or Move::R when scanning the marker"),
                );
            }
        }
    }
    out
}

/// `DTM005` — halt-state reachability: `q_stop` must be reachable from
/// `q_start` (otherwise every execution dies on the round limit), and the
/// single-round claim must agree with `q_pause` reachability.
pub fn check_halting(a: &DtmArtifact) -> Vec<Diagnostic> {
    let reachable = reachable_states(&a.tm);
    let mut out = Vec::new();
    if !reachable.contains(&a.tm.stop().0) {
        out.push(
            Diagnostic::error(
                "DTM005",
                a.artifact(),
                "q_stop is unreachable from q_start: the machine can never halt",
            )
            .with_suggestion("route at least one rule (directly or transitively) to q_stop"),
        );
    }
    let pauses = reachable.contains(&a.tm.pause().0);
    if a.single_round && pauses {
        out.push(Diagnostic::warning(
            "DTM005",
            a.artifact(),
            "machine is declared single-round but q_pause is reachable",
        ));
    }
    if !a.single_round && !pauses {
        out.push(
            Diagnostic::warning(
                "DTM005",
                a.artifact(),
                "machine is declared multi-round but q_pause is unreachable",
            )
            .with_suggestion("declare the machine single-round"),
        );
    }
    out
}

/// `DTM006` — conservative non-termination detection: an entry with no
/// progress (writes back what it scanned, all heads stay) repeats the
/// exact machine configuration, so any cycle of such entries — the scanned
/// triple cannot change along it — loops forever once entered.
pub fn check_progress(a: &DtmArtifact) -> Vec<Diagnostic> {
    let mut no_progress: BTreeMap<[Sym; 3], BTreeMap<usize, usize>> = BTreeMap::new();
    for (q, scanned, t) in a.tm.transitions() {
        if t.write == scanned && t.moves == [Move::S; 3] {
            no_progress
                .entry(scanned)
                .or_default()
                .insert(q.0, t.next.0);
        }
    }
    let reachable = reachable_states(&a.tm);
    let mut out = Vec::new();
    for (scanned, succ) in &no_progress {
        // Functional graph on states: walk from each state, a revisit
        // within the walk is a cycle.
        let mut classified: BTreeSet<usize> = BTreeSet::new();
        for &start in succ.keys() {
            if classified.contains(&start) || !reachable.contains(&start) {
                continue;
            }
            let mut path = Vec::new();
            let mut seen_here: BTreeSet<usize> = BTreeSet::new();
            let mut cur = start;
            while let Some(&next) = succ.get(&cur) {
                if seen_here.contains(&cur) {
                    // Cycle found; report it once via its smallest state.
                    let cycle_start = cur;
                    let names: Vec<&str> = path
                        .iter()
                        .skip_while(|&&q| q != cycle_start)
                        .map(|&q| a.tm.state_name(StateId(q)))
                        .collect();
                    let budget_note = match a.step_budget {
                        Some(b) => {
                            format!(" (the declared step budget of {b} cannot be met)")
                        }
                        None => String::new(),
                    };
                    out.push(
                        Diagnostic::error(
                            "DTM006",
                            a.artifact(),
                            format!(
                                "no-progress cycle [{}] scanning {}: the configuration \
                                 repeats exactly, so the round never ends{budget_note}",
                                names.join(" → "),
                                fmt_triple(*scanned),
                            ),
                        )
                        .with_suggestion(
                            "make some transition of the cycle move a head or write a \
                             different symbol",
                        ),
                    );
                    break;
                }
                seen_here.insert(cur);
                path.push(cur);
                cur = next;
            }
            classified.extend(seen_here);
        }
    }
    out
}

/// Runs every DTM rule over one artifact.
pub fn check_all(a: &DtmArtifact) -> Vec<Diagnostic> {
    let mut out = check_totality(a);
    out.extend(check_reachability(a));
    out.extend(check_tape_discipline(a));
    out.extend(check_halting(a));
    out.extend(check_progress(a));
    out
}
