//! Per-rule fixtures: every lint rule has a known-bad artifact it fires
//! on and a clean artifact it stays silent on, so no rule can pass
//! vacuously.

use lph_analysis::contract::{
    check_cluster_map, check_game_spec, check_metered_rounds, ArbiterArtifact, ClusterMapArtifact,
};
use lph_analysis::dtm::{
    check_halting, check_progress, check_reachability, check_tape_discipline, check_totality,
    DtmArtifact,
};
use lph_analysis::formula::{
    check_level, check_monadic, check_shadowing, check_signature, check_unused, SentenceArtifact,
};
use lph_analysis::{Diagnostic, Severity};
use lph_core::arbiters;
use lph_graphs::{generators, NodeId};
use lph_logic::dsl::{exists_adj, unary};
use lph_logic::examples;
use lph_logic::{FoVar, Formula, Matrix, Sentence, SoBlock, SoVar};
use lph_machine::{machines, DistributedTm, Move, Pat, Sym, TmBuilder, WriteOp};

fn codes(diags: &[Diagnostic]) -> Vec<&str> {
    diags.iter().map(|d| d.code.as_str()).collect()
}

fn assert_fires(diags: &[Diagnostic], code: &str) {
    assert!(codes(diags).contains(&code), "expected {code} in {diags:?}");
}

fn assert_silent(diags: &[Diagnostic], code: &str) {
    assert!(
        !codes(diags).contains(&code),
        "unexpected {code} in {diags:?}"
    );
}

/// A minimal total, halting, well-behaved machine: step off the marker,
/// then stop on anything.
fn clean_machine() -> DistributedTm {
    let mut b = TmBuilder::new();
    let go = b.state("go");
    b.rule(
        b.start(),
        [Pat::Any; 3],
        go,
        [WriteOp::Keep; 3],
        [Move::S, Move::R, Move::S],
    );
    b.rule(
        go,
        [Pat::Any; 3],
        b.stop(),
        [WriteOp::Keep; 3],
        [Move::S; 3],
    );
    b.build()
}

fn clean_artifact() -> DtmArtifact {
    DtmArtifact::new("clean", clean_machine(), true)
}

// ---------------------------------------------------------------- DTM001

#[test]
fn dtm001_fires_on_partial_table() {
    let mut b = TmBuilder::new();
    let go = b.state("go");
    b.rule(
        b.start(),
        [Pat::Any; 3],
        go,
        [WriteOp::Keep; 3],
        [Move::S, Move::R, Move::S],
    );
    // `go` only covers triples whose internal symbol is One.
    b.rule(
        go,
        [Pat::Any, Pat::Is(Sym::One), Pat::Any],
        b.stop(),
        [WriteOp::Keep; 3],
        [Move::S; 3],
    );
    let a = DtmArtifact::new("partial", b.build(), true);
    let diags = check_totality(&a);
    assert_fires(&diags, "DTM001");
    assert_eq!(diags[0].severity, Severity::Error);
}

#[test]
fn dtm001_silent_on_total_table() {
    assert_silent(&check_totality(&clean_artifact()), "DTM001");
}

// ---------------------------------------------------------------- DTM002

#[test]
fn dtm002_fires_on_unreachable_state() {
    let mut b = TmBuilder::new();
    let go = b.state("go");
    let orphan = b.state("orphan");
    b.rule(
        b.start(),
        [Pat::Any; 3],
        go,
        [WriteOp::Keep; 3],
        [Move::S; 3],
    );
    b.rule(
        go,
        [Pat::Any; 3],
        b.stop(),
        [WriteOp::Keep; 3],
        [Move::S; 3],
    );
    b.rule(
        orphan,
        [Pat::Any; 3],
        b.stop(),
        [WriteOp::Keep; 3],
        [Move::S; 3],
    );
    let a = DtmArtifact::new("orphaned", b.build(), true);
    let diags = check_reachability(&a);
    assert_fires(&diags, "DTM002");
    // The orphan's entries are dead too.
    assert_fires(&diags, "DTM003");
}

#[test]
fn dtm002_silent_on_fully_reachable_machine() {
    let diags = check_reachability(&clean_artifact());
    assert_silent(&diags, "DTM002");
    assert_silent(&diags, "DTM003");
}

// ---------------------------------------------------------------- DTM003

#[test]
fn dtm003_fires_on_rules_from_stop() {
    let mut b = TmBuilder::new();
    let go = b.state("go");
    b.rule(
        b.start(),
        [Pat::Any; 3],
        go,
        [WriteOp::Keep; 3],
        [Move::S; 3],
    );
    b.rule(
        go,
        [Pat::Any; 3],
        b.stop(),
        [WriteOp::Keep; 3],
        [Move::S; 3],
    );
    // q_stop never scans; these entries can never fire.
    b.rule(
        b.stop(),
        [Pat::Any; 3],
        go,
        [WriteOp::Keep; 3],
        [Move::S; 3],
    );
    let a = DtmArtifact::new("stop_rules", b.build(), true);
    assert_fires(&check_reachability(&a), "DTM003");
}

#[test]
fn dtm003_silent_on_corpus_machine() {
    let a = DtmArtifact::new("echo", machines::echo_machine(), false);
    assert_silent(&check_reachability(&a), "DTM003");
}

// ---------------------------------------------------------------- DTM004

#[test]
fn dtm004_fires_on_spurious_marker_write() {
    let mut b = TmBuilder::new();
    let go = b.state("go");
    b.rule(
        b.start(),
        [Pat::Any; 3],
        go,
        [WriteOp::Keep; 3],
        [Move::S, Move::R, Move::S],
    );
    // Writes ⊢ onto a blank internal cell: breaks marker discipline.
    b.rule(
        go,
        [Pat::Any; 3],
        b.stop(),
        [WriteOp::Keep, WriteOp::Put(Sym::LeftEnd), WriteOp::Keep],
        [Move::S; 3],
    );
    let a = DtmArtifact::new("marker_writer", b.build(), true);
    let diags = check_tape_discipline(&a);
    assert_fires(&diags, "DTM004");
    assert!(diags.iter().any(|d| d.severity == Severity::Error));
}

#[test]
fn dtm004_fires_on_reachable_left_move_off_marker() {
    let mut b = TmBuilder::new();
    // At round start every head sits on ⊢; moving left falls off the tape.
    b.rule(
        b.start(),
        [Pat::Any; 3],
        b.stop(),
        [WriteOp::Keep; 3],
        [Move::L, Move::S, Move::S],
    );
    let a = DtmArtifact::new("fall_off", b.build(), true);
    let diags = check_tape_discipline(&a);
    assert_fires(&diags, "DTM004");
}

#[test]
fn dtm004_silent_on_dead_marker_entries() {
    // The corpus machines all contain [Pat::Any; 3] catch-alls whose
    // ⊢-scanning expansions are dynamically dead; the head-position
    // abstraction must not flag them.
    for (name, tm) in [
        ("all_selected", machines::all_selected_decider()),
        ("coloring", machines::proper_coloring_verifier()),
        ("echo", machines::echo_machine()),
    ] {
        let a = DtmArtifact::new(name, tm, true);
        assert_silent(&check_tape_discipline(&a), "DTM004");
    }
}

// ---------------------------------------------------------------- DTM005

#[test]
fn dtm005_fires_when_stop_is_unreachable() {
    let mut b = TmBuilder::new();
    let spin = b.state("spin");
    b.rule(
        b.start(),
        [Pat::Any; 3],
        spin,
        [WriteOp::Keep; 3],
        [Move::S, Move::R, Move::S],
    );
    b.rule(
        spin,
        [Pat::Any; 3],
        spin,
        [WriteOp::Keep; 3],
        [Move::S, Move::R, Move::S],
    );
    let a = DtmArtifact::new("never_stops", b.build(), true);
    let diags = check_halting(&a);
    assert_fires(&diags, "DTM005");
    assert!(diags.iter().any(|d| d.severity == Severity::Error));
}

#[test]
fn dtm005_fires_on_wrong_single_round_claim() {
    // echo pauses, so claiming single-round is wrong (warning).
    let a = DtmArtifact::new("echo", machines::echo_machine(), true);
    assert_fires(&check_halting(&a), "DTM005");
}

#[test]
fn dtm005_silent_on_correct_claims() {
    assert_silent(&check_halting(&clean_artifact()), "DTM005");
    let echo = DtmArtifact::new("echo", machines::echo_machine(), false);
    assert_silent(&check_halting(&echo), "DTM005");
}

// ---------------------------------------------------------------- DTM006

#[test]
fn dtm006_fires_on_no_progress_self_loop() {
    let mut b = TmBuilder::new();
    let spin = b.state("spin");
    b.rule(
        b.start(),
        [Pat::Any; 3],
        spin,
        [WriteOp::Keep; 3],
        [Move::S, Move::R, Move::S],
    );
    // Keep + all-stay: the configuration repeats exactly.
    b.rule(spin, [Pat::Any; 3], spin, [WriteOp::Keep; 3], [Move::S; 3]);
    let a = DtmArtifact::new("spinner", b.build(), true).with_step_budget(10);
    let diags = check_progress(&a);
    assert_fires(&diags, "DTM006");
    assert!(diags[0].message.contains("step budget"), "{diags:?}");
}

#[test]
fn dtm006_fires_on_two_state_no_progress_cycle() {
    let mut b = TmBuilder::new();
    let ping = b.state("ping");
    let pong = b.state("pong");
    b.rule(
        b.start(),
        [Pat::Any; 3],
        ping,
        [WriteOp::Keep; 3],
        [Move::S, Move::R, Move::S],
    );
    b.rule(ping, [Pat::Any; 3], pong, [WriteOp::Keep; 3], [Move::S; 3]);
    b.rule(pong, [Pat::Any; 3], ping, [WriteOp::Keep; 3], [Move::S; 3]);
    let a = DtmArtifact::new("ping_pong", b.build(), true);
    assert_fires(&check_progress(&a), "DTM006");
}

#[test]
fn dtm006_silent_on_progressing_machines() {
    assert_silent(&check_progress(&clean_artifact()), "DTM006");
    let coloring = DtmArtifact::new("coloring", machines::proper_coloring_verifier(), false);
    assert_silent(&check_progress(&coloring), "DTM006");
}

// ---------------------------------------------------------------- FRM001

#[test]
fn frm001_fires_on_unused_so_and_fo_variables() {
    let x = FoVar(0);
    let y = FoVar(1);
    let c = SoVar::set(0);
    // ∃C ∀°x ∃y⇌x ⊤ — C and y are both dead.
    let s = Sentence::new(
        vec![SoBlock::exists(vec![c])],
        Matrix::Lfo {
            x,
            body: exists_adj(y, x, Formula::True),
        },
    );
    let a = SentenceArtifact::new("dead_vars", s, "Σ1");
    let diags = check_unused(&a);
    assert_eq!(
        diags.iter().filter(|d| d.code == "FRM001").count(),
        2,
        "{diags:?}"
    );
}

#[test]
fn frm001_silent_on_corpus_sentence() {
    let a = SentenceArtifact::new("ham", examples::hamiltonian(), "Σ5");
    assert_silent(&check_unused(&a), "FRM001");
}

// ---------------------------------------------------------------- FRM002

#[test]
fn frm002_fires_on_shadowed_binder() {
    let x = FoVar(0);
    let y = FoVar(1);
    // ∀°x ∃y⇌x ∃y⇌x ⊙₁y — the inner ∃y shadows the outer one.
    let body = exists_adj(y, x, exists_adj(y, x, unary(0, y)));
    let a = SentenceArtifact::new("shadowed", Sentence::lfo(x, body), "Σ0 = Π0");
    assert_fires(&check_shadowing(&a), "FRM002");
}

#[test]
fn frm002_silent_on_corpus_sentence() {
    let a = SentenceArtifact::new("nas", examples::not_all_selected(), "Σ3");
    assert_silent(&check_shadowing(&a), "FRM002");
}

// ---------------------------------------------------------------- FRM003

#[test]
fn frm003_fires_on_out_of_signature_atom() {
    let x = FoVar(0);
    // ⊙₅ does not exist in the (1 unary, 2 binary) graph signature.
    let a = SentenceArtifact::new("bad_atom", Sentence::lfo(x, unary(4, x)), "Σ0 = Π0");
    let diags = check_signature(&a);
    assert_fires(&diags, "FRM003");
    assert_eq!(diags[0].severity, Severity::Error);
}

#[test]
fn frm003_fires_on_arity_colliding_so_indices() {
    let x = FoVar(0);
    let set0 = SoVar::set(0);
    let bin0 = SoVar::binary(0);
    let s = Sentence::new(
        vec![SoBlock::exists(vec![set0, bin0])],
        Matrix::Lfo {
            x,
            body: lph_logic::dsl::and(vec![
                lph_logic::dsl::app(set0, vec![x]),
                lph_logic::dsl::app(bin0, vec![x, x]),
            ]),
        },
    );
    let a = SentenceArtifact::new("collide", s, "Σ1");
    assert_fires(&check_signature(&a), "FRM003");
}

#[test]
fn frm003_silent_on_corpus_sentence() {
    let a = SentenceArtifact::new("3col", examples::three_colorable(), "Σ1");
    assert_silent(&check_signature(&a), "FRM003");
}

// ---------------------------------------------------------------- FRM004

#[test]
fn frm004_fires_on_mislabeled_level() {
    // three_colorable is Σ1, claiming Σ2 must fire.
    let a = SentenceArtifact::new("mislabeled", examples::three_colorable(), "Σ2");
    let diags = check_level(&a);
    assert_fires(&diags, "FRM004");
    assert_eq!(diags[0].severity, Severity::Error);
}

#[test]
fn frm004_fires_on_wrong_locality_claim() {
    let a =
        SentenceArtifact::new("fake_fo", examples::all_selected(), "Σ0 = Π0").claim_local(false);
    assert_fires(&check_level(&a), "FRM004");
}

#[test]
fn frm004_silent_on_correct_claims() {
    let a = SentenceArtifact::new("nonham", examples::non_hamiltonian(), "Π4");
    assert_silent(&check_level(&a), "FRM004");
}

// ---------------------------------------------------------------- FRM005

#[test]
fn frm005_fires_on_false_monadicity_claim() {
    // not_all_selected quantifies the binary pointer relation P.
    let a = SentenceArtifact::new("fake_monadic", examples::not_all_selected(), "Σ3").monadic();
    let diags = check_monadic(&a);
    assert_fires(&diags, "FRM005");
    assert_eq!(diags[0].severity, Severity::Error);
}

#[test]
fn frm005_notes_unclaimed_monadicity_and_accepts_correct_claim() {
    let unclaimed = SentenceArtifact::new("3col", examples::three_colorable(), "Σ1");
    let diags = check_monadic(&unclaimed);
    assert_fires(&diags, "FRM005");
    assert_eq!(diags[0].severity, Severity::Note);

    let claimed = SentenceArtifact::new("3col", examples::three_colorable(), "Σ1").monadic();
    assert_silent(&check_monadic(&claimed), "FRM005");
}

// ---------------------------------------------------------------- ARB001

#[test]
fn arb001_fires_on_wrong_class_claim() {
    // The 3-COLORABLE verifier realizes Σ1; claiming Π1 and Σ2 both fire.
    for claim in ["Π1", "Σ2"] {
        let a = ArbiterArtifact::new(arbiters::three_colorable_verifier(), claim, 2);
        let diags = check_game_spec(&a);
        assert_fires(&diags, "ARB001");
        assert_eq!(diags[0].severity, Severity::Error);
    }
}

#[test]
fn arb001_silent_on_correct_claim() {
    let a = ArbiterArtifact::new(arbiters::not_all_selected_sigma3(), "Σ3", 2);
    assert_silent(&check_game_spec(&a), "ARB001");
}

// ---------------------------------------------------------------- ARB002

#[test]
fn arb002_fires_when_declared_rounds_are_exceeded() {
    let a = ArbiterArtifact::new(arbiters::three_colorable_verifier(), "Σ1", 1)
        .with_probes(vec![generators::cycle(4)]);
    assert_fires(&check_metered_rounds(&a), "ARB002");
}

#[test]
fn arb002_silent_with_adequate_declaration() {
    let a = ArbiterArtifact::new(arbiters::three_colorable_verifier(), "Σ1", 2)
        .with_probes(vec![generators::cycle(4)]);
    assert_silent(&check_metered_rounds(&a), "ARB002");
}

// ---------------------------------------------------------------- RED001

#[test]
fn red001_fires_on_adjacency_violation() {
    // G = path 0–1–2 (0 and 2 non-adjacent); G' = path with an edge
    // joining the clusters of 0 and 2.
    let a = ClusterMapArtifact {
        name: "bad_adjacency".to_owned(),
        g_prime: generators::path(2),
        g: generators::path(3),
        assignment: vec![NodeId(0), NodeId(2)],
    };
    let diags = check_cluster_map(&a);
    assert_fires(&diags, "RED001");
    assert!(diags.iter().any(|d| d.severity == Severity::Error));
}

#[test]
fn red001_silent_on_valid_map() {
    let a = ClusterMapArtifact {
        name: "identity".to_owned(),
        g_prime: generators::path(3),
        g: generators::path(3),
        assignment: vec![NodeId(0), NodeId(1), NodeId(2)],
    };
    let diags = check_cluster_map(&a);
    assert_silent(&diags, "RED001");
    assert_silent(&diags, "RED002");
}

// ---------------------------------------------------------------- RED002

#[test]
fn red002_fires_on_empty_cluster() {
    // Both G' nodes map to node 0; node 1's cluster is empty.
    let a = ClusterMapArtifact {
        name: "empty_cluster".to_owned(),
        g_prime: generators::path(2),
        g: generators::path(2),
        assignment: vec![NodeId(0), NodeId(0)],
    };
    let diags = check_cluster_map(&a);
    assert_fires(&diags, "RED002");
    assert_silent(&diags, "RED001");
}

#[test]
fn red002_silent_on_surjective_map() {
    let a = ClusterMapArtifact {
        name: "surjective".to_owned(),
        g_prime: generators::cycle(4),
        g: generators::path(2),
        assignment: vec![NodeId(0), NodeId(0), NodeId(1), NodeId(1)],
    };
    assert_silent(&check_cluster_map(&a), "RED002");
}
