//! Per-rule fixtures for the semantic dataflow tier (`--analyze`): every
//! flow rule has a known-bad artifact it fires on and a clean artifact it
//! stays silent on, so no rule can pass vacuously.

use lph_analysis::contract::ReductionArtifact;
use lph_analysis::dtm::DtmArtifact;
use lph_analysis::flow::bytecode::{
    check_bytecode_bounds, check_dispatch_translation, check_halt_coverage, check_skip_soundness,
};
use lph_analysis::flow::machine::{
    analyze, check_certified_bounds, check_flow_halting, check_flow_reachability,
    check_step_certificate,
};
use lph_analysis::flow::plan::{check_plan_cost, check_plan_folds, check_plan_guards};
use lph_analysis::flow::reduction::{check_cluster_size, check_domain, check_output_size};
use lph_analysis::flow::sentence::{
    check_prefix_normal_form, check_radius_flow, check_semantic_level,
};
use lph_analysis::formula::SentenceArtifact;
use lph_analysis::{verify_bytecode, verify_plan, Diagnostic, Severity};
use lph_graphs::{generators, BitString, LabeledGraph, PolyBound};
use lph_logic::dsl::{and, app, exists_near, unary};
use lph_logic::examples;
use lph_logic::{CompiledSentence, FoVar, Formula, Matrix, PlanOp, Sentence, SoBlock, SoVar};
use lph_machine::{
    machines, CompiledTm, DistributedTm, Move, OpView, Pat, Sym, TmBuilder, WriteOp,
};
use lph_reductions::{ClusterPatch, LocalReduction, LocalView, ReductionError, SizeBound};

fn codes(diags: &[Diagnostic]) -> Vec<&str> {
    diags.iter().map(|d| d.code.as_str()).collect()
}

fn assert_fires(diags: &[Diagnostic], code: &str) {
    assert!(codes(diags).contains(&code), "expected {code} in {diags:?}");
}

fn assert_silent(diags: &[Diagnostic], code: &str) {
    assert!(
        !codes(diags).contains(&code),
        "unexpected {code} in {diags:?}"
    );
}

/// A minimal well-behaved machine: step off the marker, then stop.
fn clean_machine() -> DistributedTm {
    let mut b = TmBuilder::new();
    let go = b.state("go");
    b.rule(
        b.start(),
        [Pat::Any; 3],
        go,
        [WriteOp::Keep; 3],
        [Move::S, Move::R, Move::S],
    );
    b.rule(
        go,
        [Pat::Any; 3],
        b.stop(),
        [WriteOp::Keep; 3],
        [Move::S; 3],
    );
    b.build()
}

/// A machine whose only cycle makes no progress (Keep + all-stay): no
/// consuming-tape certificate exists for it.
fn uncertifiable_machine() -> DistributedTm {
    let mut b = TmBuilder::new();
    let ping = b.state("ping");
    let pong = b.state("pong");
    b.rule(
        b.start(),
        [Pat::Any; 3],
        ping,
        [WriteOp::Keep; 3],
        [Move::S, Move::R, Move::S],
    );
    b.rule(ping, [Pat::Any; 3], pong, [WriteOp::Keep; 3], [Move::S; 3]);
    b.rule(pong, [Pat::Any; 3], ping, [WriteOp::Keep; 3], [Move::S; 3]);
    b.build()
}

// ---------------------------------------------------------------- DTM007

/// `ghost` is syntactically reachable (an entry of `blankland` leads to
/// it) but flow-unreachable: `blankland` is only ever entered with the
/// internal head inside the blank zone, where the `One`-scanning entry
/// into `ghost` can never fire.
#[test]
fn dtm007_fires_on_flow_unreachable_state() {
    let mut b = TmBuilder::new();
    let skip = b.state("skip");
    let blankland = b.state("blankland");
    let ghost = b.state("ghost");
    b.rule(
        b.start(),
        [Pat::Any; 3],
        skip,
        [WriteOp::Keep; 3],
        [Move::S, Move::R, Move::S],
    );
    b.rule(
        skip,
        [Pat::Any, Pat::Is(Sym::One), Pat::Any],
        skip,
        [WriteOp::Keep; 3],
        [Move::S, Move::R, Move::S],
    );
    b.rule(
        skip,
        [Pat::Any, Pat::Is(Sym::Blank), Pat::Any],
        blankland,
        [WriteOp::Keep; 3],
        [Move::S, Move::R, Move::S],
    );
    b.rule(
        blankland,
        [Pat::Any, Pat::Is(Sym::One), Pat::Any],
        ghost,
        [WriteOp::Keep; 3],
        [Move::S; 3],
    );
    b.rule(
        blankland,
        [Pat::Any, Pat::Is(Sym::Blank), Pat::Any],
        b.stop(),
        [WriteOp::Keep; 3],
        [Move::S; 3],
    );
    b.rule(
        ghost,
        [Pat::Any; 3],
        b.stop(),
        [WriteOp::Keep; 3],
        [Move::S; 3],
    );
    let a = DtmArtifact::new("ghosted", b.build(), true);
    let diags = check_flow_reachability(&a);
    assert_fires(&diags, "DTM007");
    assert_eq!(diags[0].severity, Severity::Warning);
    assert!(diags[0].message.contains("ghost"), "{diags:?}");
}

#[test]
fn dtm007_silent_on_corpus_machines() {
    for (name, tm) in [
        ("all_selected", machines::all_selected_decider()),
        ("coloring", machines::proper_coloring_verifier()),
        ("echo", machines::echo_machine()),
    ] {
        let a = DtmArtifact::new(name, tm, false);
        assert_silent(&check_flow_reachability(&a), "DTM007");
    }
}

// ---------------------------------------------------------------- DTM008

#[test]
fn dtm008_fires_when_no_abstract_path_halts() {
    let mut b = TmBuilder::new();
    let spin = b.state("spin");
    b.rule(
        b.start(),
        [Pat::Any; 3],
        spin,
        [WriteOp::Keep; 3],
        [Move::S, Move::R, Move::S],
    );
    b.rule(
        spin,
        [Pat::Any; 3],
        spin,
        [WriteOp::Keep; 3],
        [Move::S, Move::R, Move::S],
    );
    let single = DtmArtifact::new("never_stops", b.build(), true);
    let diags = check_flow_halting(&single);
    assert_fires(&diags, "DTM008");
    assert_eq!(diags[0].severity, Severity::Error);
    // Multi-round claim: still no q_stop/q_pause, still an error.
    let multi = DtmArtifact::new("never_ends", uncertifiable_machine(), false);
    assert_fires(&check_flow_halting(&multi), "DTM008");
}

#[test]
fn dtm008_silent_on_halting_machines() {
    let a = DtmArtifact::new("clean", clean_machine(), true);
    assert_silent(&check_flow_halting(&a), "DTM008");
    let echo = DtmArtifact::new("echo", machines::echo_machine(), false);
    assert_silent(&check_flow_halting(&echo), "DTM008");
}

// ---------------------------------------------------------------- DTM009

#[test]
fn dtm009_fires_when_claim_does_not_dominate_certificate() {
    let a = DtmArtifact::new("overclaimed", clean_machine(), true)
        .with_bounds(PolyBound::constant(0), PolyBound::constant(0));
    let diags = check_certified_bounds(&a);
    assert_fires(&diags, "DTM009");
    assert!(diags.iter().all(|d| d.severity == Severity::Proof));
}

#[test]
fn dtm009_fires_when_claim_has_no_certificate() {
    let a = DtmArtifact::new("unbacked", uncertifiable_machine(), false)
        .with_bounds(PolyBound::linear(10, 10), PolyBound::linear(10, 10));
    let diags = check_certified_bounds(&a);
    assert_fires(&diags, "DTM009");
    assert!(
        diags[0].message.contains("cannot be certified"),
        "{diags:?}"
    );
}

#[test]
fn dtm009_silent_on_dominating_claim() {
    let a = DtmArtifact::new("generous", clean_machine(), true).with_bounds(
        PolyBound::linear(1000, 1000),
        PolyBound::linear(10_000, 10_000),
    );
    assert_silent(&check_certified_bounds(&a), "DTM009");
}

// ---------------------------------------------------------------- DTM010

#[test]
fn dtm010_fires_when_no_certificate_derivable() {
    let a = DtmArtifact::new("loopy", uncertifiable_machine(), false);
    let diags = check_step_certificate(&a);
    assert_fires(&diags, "DTM010");
    assert_eq!(diags[0].severity, Severity::Warning);
    assert!(diags[0].message.contains("ping") || diags[0].message.contains("pong"));
}

#[test]
fn dtm010_silent_when_certificate_exists() {
    let a = DtmArtifact::new("clean", clean_machine(), true);
    assert_silent(&check_step_certificate(&a), "DTM010");
    let coloring = DtmArtifact::new("coloring", machines::proper_coloring_verifier(), false);
    assert_silent(&check_step_certificate(&coloring), "DTM010");
}

// ---------------------------------------------------------------- FRM006

#[test]
fn frm006_fires_on_level_inflated_by_dead_block() {
    let x = FoVar(0);
    let c = SoVar::set(0);
    // ∃C ∀°x ⊤ claims Σ1, but C never reaches the matrix: the sentence
    // provably defines a Σ0 property.
    let s = Sentence::new(
        vec![SoBlock::exists(vec![c])],
        Matrix::Lfo {
            x,
            body: Formula::True,
        },
    );
    let a = SentenceArtifact::new("dead_block", s, "Σ1");
    let diags = check_semantic_level(&a);
    assert_fires(&diags, "FRM006");
    assert_eq!(diags[0].severity, Severity::Proof);
}

#[test]
fn frm006_silent_on_corpus_sentences() {
    for (name, s, level) in [
        ("ham", examples::hamiltonian(), "Σ5"),
        ("nas", examples::not_all_selected(), "Σ3"),
        ("all_sel", examples::all_selected(), "Σ0 = Π0"),
    ] {
        let a = SentenceArtifact::new(name, s, level);
        assert_silent(&check_semantic_level(&a), "FRM006");
    }
}

// ---------------------------------------------------------------- FRM007

#[test]
fn frm007_fires_when_claimed_radius_below_flow_radius() {
    // three_colorable's matrix uses a variable at flow distance 2.
    let a = SentenceArtifact::new("shallow", examples::three_colorable(), "Σ1").with_radius(1);
    let diags = check_radius_flow(&a);
    assert_fires(&diags, "FRM007");
    assert_eq!(diags[0].severity, Severity::Proof);
}

#[test]
fn frm007_warns_when_claimed_radius_above_syntactic_radius() {
    let a = SentenceArtifact::new("bloated", examples::three_colorable(), "Σ1").with_radius(10);
    let diags = check_radius_flow(&a);
    assert_fires(&diags, "FRM007");
    assert_eq!(diags[0].severity, Severity::Warning);
}

#[test]
fn frm007_silent_on_pinched_claim_or_no_claim() {
    let claimed = SentenceArtifact::new("exact", examples::three_colorable(), "Σ1").with_radius(2);
    assert_silent(&check_radius_flow(&claimed), "FRM007");
    let unclaimed = SentenceArtifact::new("none", examples::three_colorable(), "Σ1");
    assert_silent(&check_radius_flow(&unclaimed), "FRM007");
}

// ---------------------------------------------------------------- FRM008

#[test]
fn frm008_fires_on_unmerged_adjacent_blocks() {
    let x = FoVar(0);
    let c0 = SoVar::set(0);
    let c1 = SoVar::set(1);
    // ∃C₀ ∃C₁ as two separate blocks: level-neutral but not normal form.
    let s = Sentence::new(
        vec![SoBlock::exists(vec![c0]), SoBlock::exists(vec![c1])],
        Matrix::Lfo {
            x,
            body: and(vec![app(c0, vec![x]), app(c1, vec![x])]),
        },
    );
    let a = SentenceArtifact::new("split_prefix", s, "Σ1");
    let diags = check_prefix_normal_form(&a);
    assert_fires(&diags, "FRM008");
    assert_eq!(diags[0].severity, Severity::Warning);
}

#[test]
fn frm008_silent_on_corpus_sentences() {
    for (name, s, level) in [
        ("ham", examples::hamiltonian(), "Σ5"),
        ("non3col", examples::non_three_colorable(), "Π4"),
    ] {
        let a = SentenceArtifact::new(name, s, level);
        assert_silent(&check_prefix_normal_form(&a), "FRM008");
    }
}

// ---------------------------------------------------------------- RED003

#[test]
fn red003_fires_on_probe_with_isolated_node() {
    let a = ReductionArtifact::new(
        Box::new(lph_reductions::eulerian::AllSelectedToEulerian),
        vec![LabeledGraph::single_node(BitString::from_bits01("1"))],
    );
    let diags = check_domain(&a);
    assert_fires(&diags, "RED003");
    assert_eq!(diags[0].severity, Severity::Error);
}

#[test]
fn red003_silent_on_domain_respecting_probes() {
    let a = ReductionArtifact::new(
        Box::new(lph_reductions::eulerian::AllSelectedToEulerian),
        vec![generators::labeled_cycle(&["1", "1", "0"])],
    );
    assert_silent(&check_domain(&a), "RED003");
}

// ------------------------------------------------------- RED004 / RED005

/// A deliberately super-polynomial gadget: `2^(d + 2)` chained nodes per
/// cluster, against declared *linear* bounds.
#[derive(Debug, Clone, Copy, Default)]
struct ExponentialGadget;

impl LocalReduction for ExponentialGadget {
    fn name(&self) -> &str {
        "exponential gadget (fixture)"
    }

    fn radius(&self) -> usize {
        1
    }

    fn cluster(&self, view: &LocalView) -> Result<ClusterPatch, ReductionError> {
        let k = 1usize << (view.degree() + 2);
        let blank = BitString::new();
        let mut patch = ClusterPatch::default();
        for i in 0..k {
            patch.node(format!("n{i}"), blank.clone());
        }
        for i in 1..k {
            patch.edge(format!("n{}", i - 1), format!("n{i}"));
        }
        for (_, nbr_id, _) in view.sorted_neighbors() {
            patch.outer_edge("n0", nbr_id.clone(), "n0");
        }
        Ok(patch)
    }

    fn size_bound(&self) -> Option<SizeBound> {
        Some(SizeBound {
            nodes: PolyBound::linear(1, 1),
            inner_edges: PolyBound::linear(1, 1),
            outer_edges: PolyBound::linear(0, 1),
        })
    }
}

/// A reduction that declares no size bound at all.
#[derive(Debug, Clone, Copy, Default)]
struct Undeclared;

impl LocalReduction for Undeclared {
    fn name(&self) -> &str {
        "undeclared size (fixture)"
    }

    fn radius(&self) -> usize {
        1
    }

    fn cluster(&self, view: &LocalView) -> Result<ClusterPatch, ReductionError> {
        let mut patch = ClusterPatch::default();
        patch.node("f", BitString::new());
        for (_, nbr_id, _) in view.sorted_neighbors() {
            patch.outer_edge("f", nbr_id.clone(), "f");
        }
        Ok(patch)
    }
}

#[test]
fn red004_fires_on_super_polynomial_cluster() {
    let a = ReductionArtifact::new(
        Box::new(ExponentialGadget),
        vec![generators::labeled_cycle(&["1", "1", "1"])],
    );
    let diags = check_cluster_size(&a);
    assert_fires(&diags, "RED004");
    assert_eq!(diags[0].severity, Severity::Proof);
}

#[test]
fn red004_silent_on_honest_declarations() {
    let a = ReductionArtifact::new(
        Box::new(lph_reductions::eulerian::AllSelectedToEulerian),
        vec![generators::labeled_cycle(&["1", "1", "0"])],
    );
    assert_silent(&check_cluster_size(&a), "RED004");
}

#[test]
fn red005_fires_on_super_polynomial_output() {
    let a = ReductionArtifact::new(
        Box::new(ExponentialGadget),
        vec![generators::labeled_cycle(&["1", "1", "1"])],
    );
    let diags = check_output_size(&a);
    assert_fires(&diags, "RED005");
    assert!(diags.iter().any(|d| d.severity == Severity::Proof));
}

#[test]
fn red005_notes_missing_size_bound() {
    let a = ReductionArtifact::new(
        Box::new(Undeclared),
        vec![generators::labeled_cycle(&["1"; 3])],
    );
    let diags = check_output_size(&a);
    assert_fires(&diags, "RED005");
    assert_eq!(diags[0].severity, Severity::Note);
}

#[test]
fn red005_silent_on_honest_declarations() {
    let a = ReductionArtifact::new(
        Box::new(lph_reductions::eulerian::AllSelectedToEulerian),
        vec![generators::labeled_cycle(&["1", "1", "0"])],
    );
    assert_silent(&check_output_size(&a), "RED005");
}

// --------------------------------------------------------- VM001 – VM004

/// The first populated (source-backed) dispatch slot of `ct`.
fn populated_slot(ct: &CompiledTm) -> usize {
    (0..ct.program_len())
        .find(|&s| ct.op_view(s).next.is_some())
        .expect("compiled program has at least one live op")
}

#[test]
fn vm001_fires_on_retargeted_dispatch_slot() {
    let tm = clean_machine();
    let mut ct = CompiledTm::compile(&tm);
    let slot = populated_slot(&ct);
    let mut op = ct.op_view(slot);
    // Redirect the op to a state its source entry does not name.
    op.next = if op.next == Some(ct.start_state()) {
        Some(ct.stop_state())
    } else {
        Some(ct.start_state())
    };
    ct.patch_op(slot, op);
    let diags = check_dispatch_translation("dtm:clean", &tm, &ct);
    assert_fires(&diags, "VM001");
    assert!(diags.iter().all(|d| d.severity == Severity::Proof));
    // The slot is still source-backed, so halt coverage has no complaint:
    // the two rules split the obligation.
    assert_silent(&check_halt_coverage("dtm:clean", &tm, &ct), "VM002");
}

#[test]
fn vm001_silent_on_honest_compilation() {
    let tm = clean_machine();
    let ct = CompiledTm::compile(&tm);
    assert_silent(&check_dispatch_translation("dtm:clean", &tm, &ct), "VM001");
}

#[test]
fn vm002_fires_on_sentinel_replaced_by_live_op() {
    let tm = clean_machine();
    let mut ct = CompiledTm::compile(&tm);
    // q_stop never scans: all of its slots are halt sentinels.
    let slot = CompiledTm::slot_of(ct.stop_state(), [Sym::Blank; 3]);
    let mut op = ct.op_view(slot);
    assert!(op.next.is_none(), "q_stop slots must start as sentinels");
    op.next = Some(ct.start_state());
    ct.patch_op(slot, op);
    let diags = check_halt_coverage("dtm:clean", &tm, &ct);
    assert_fires(&diags, "VM002");
    assert!(diags.iter().all(|d| d.severity == Severity::Proof));
    // VM001 checks the source→bytecode direction only; every source
    // entry still translates faithfully.
    assert_silent(&check_dispatch_translation("dtm:clean", &tm, &ct), "VM001");
}

#[test]
fn vm003_fires_on_lying_skip_annotation() {
    let tm = clean_machine();
    let mut ct = CompiledTm::compile(&tm);
    // clean_machine has no self-loops, so no op is skip-eligible.
    let slot = populated_slot(&ct);
    let mut op = ct.op_view(slot);
    assert!(op.skip.is_none());
    op.skip = Some(1);
    ct.patch_op(slot, op);
    let diags = check_skip_soundness("dtm:clean", &ct);
    assert_fires(&diags, "VM003");
    assert!(diags.iter().all(|d| d.severity == Severity::Proof));
    // The skip flag is bytecode-local: dispatch translation compares
    // next/write/moves and stays silent.
    assert_silent(&check_dispatch_translation("dtm:clean", &tm, &ct), "VM001");
}

#[test]
fn vm003_silent_on_honest_skip_annotations() {
    // The coloring verifier's scan loops compile with real skip
    // annotations (identity-write self-loops moving one head right).
    let ct = CompiledTm::compile(&machines::proper_coloring_verifier());
    assert!(
        (0..ct.program_len()).any(|s| ct.op_view(s).skip.is_some()),
        "fixture should exercise a real skip annotation"
    );
    assert_silent(&check_skip_soundness("dtm:coloring", &ct), "VM003");
}

#[test]
fn vm004_fires_when_bytecode_bounds_diverge_from_interpreter_tier() {
    let tm = clean_machine();
    let flow = analyze(&tm);
    assert!(
        flow.steps.is_some(),
        "interpreter tier certifies clean_machine"
    );
    let mut ct = CompiledTm::compile(&tm);
    // Rewrite every `go` slot into a no-progress self-loop: re-deriving
    // the Lemma 10 bound from this bytecode fails while the interpreter
    // tier still certifies one.
    let go = (0..ct.state_count())
        .find(|&q| ct.state_name(q) == "go")
        .expect("clean_machine has a go state");
    for a in Sym::ALL {
        for b in Sym::ALL {
            for c in Sym::ALL {
                ct.patch_op(
                    CompiledTm::slot_of(go, [a, b, c]),
                    OpView {
                        next: Some(go),
                        write: [a, b, c],
                        moves: [Move::S; 3],
                        skip: None,
                    },
                );
            }
        }
    }
    let diags = check_bytecode_bounds("dtm:clean", &ct, &flow);
    assert_fires(&diags, "VM004");
    assert!(diags.iter().all(|d| d.severity == Severity::Proof));
}

#[test]
fn vm_rules_silent_on_corpus_machines() {
    for (name, tm) in [
        ("all_selected", machines::all_selected_decider()),
        ("coloring", machines::proper_coloring_verifier()),
        ("echo", machines::echo_machine()),
        ("clean", clean_machine()),
        ("uncertifiable", uncertifiable_machine()),
    ] {
        let ct = CompiledTm::compile(&tm);
        let flow = analyze(&tm);
        let diags = verify_bytecode(&format!("dtm:{name}"), &tm, &ct, &flow);
        assert!(diags.is_empty(), "{name}: {diags:?}");
    }
}

// --------------------------------------------------------- PLN001 – PLN003

/// A sentence whose matrix body constant-folds: a ball always contains
/// its anchor, so `∃y⇌≤1x ⊥` lowers to `⊥` (and stays in `BF`).
fn folding_sentence() -> Sentence {
    let x = FoVar(0);
    let y = FoVar(1);
    Sentence::new(
        vec![],
        Matrix::Lfo {
            x,
            body: exists_near(y, x, 1, Formula::False),
        },
    )
}

#[test]
fn pln001_fires_on_flipped_constant_fold() {
    let mut cs = CompiledSentence::compile(&folding_sentence());
    assert!(
        matches!(cs.ops()[cs.root()], PlanOp::Const(false)),
        "compiler folds ∃y ⊥ to ⊥"
    );
    cs.patch_op(cs.root(), PlanOp::Const(true));
    let diags = check_plan_folds("sentence:fold", &cs);
    assert_fires(&diags, "PLN001");
    assert!(diags.iter().all(|d| d.severity == Severity::Proof));
}

#[test]
fn pln001_silent_on_honest_fold() {
    let cs = CompiledSentence::compile(&folding_sentence());
    assert_silent(&check_plan_folds("sentence:fold", &cs), "PLN001");
}

#[test]
fn pln002_fires_on_widened_guard_radius() {
    let x = FoVar(0);
    let y = FoVar(1);
    let s = Sentence::new(
        vec![],
        Matrix::Lfo {
            x,
            body: exists_near(y, x, 2, unary(0, y)),
        },
    );
    let mut cs = CompiledSentence::compile(&s);
    let (id, widened) = cs
        .ops()
        .iter()
        .enumerate()
        .find_map(|(i, op)| match op {
            PlanOp::ExistsNear {
                slot,
                anchor,
                radius,
                body,
            } => {
                assert_eq!(*radius, 2, "guard carries the source radius");
                Some((
                    i,
                    PlanOp::ExistsNear {
                        slot: *slot,
                        anchor: *anchor,
                        radius: radius + 3,
                        body: *body,
                    },
                ))
            }
            _ => None,
        })
        .expect("plan contains the fused range quantifier");
    cs.patch_op(id, widened);
    let diags = check_plan_guards("sentence:guard", &cs);
    assert_fires(&diags, "PLN002");
    assert!(diags.iter().all(|d| d.severity == Severity::Proof));
}

#[test]
fn pln003_fires_on_tampered_arena() {
    let mut cs = CompiledSentence::compile(&examples::three_colorable());
    // A self-referential node breaks the bottom-up arena invariant the
    // cost derivation rests on.
    let root = cs.root();
    cs.patch_op(root, PlanOp::Not(root));
    let diags = check_plan_cost("sentence:cost", &cs);
    assert_fires(&diags, "PLN003");
    assert!(diags.iter().all(|d| d.severity == Severity::Proof));
}

#[test]
fn pln_rules_silent_on_corpus_sentences() {
    for (name, s) in [
        ("all_selected", examples::all_selected()),
        ("not_all_selected", examples::not_all_selected()),
        ("three_colorable", examples::three_colorable()),
        ("hamiltonian", examples::hamiltonian()),
        ("non_three_colorable", examples::non_three_colorable()),
    ] {
        let cs = CompiledSentence::compile(&s);
        let diags = verify_plan(&format!("sentence:{name}"), &cs);
        assert!(diags.is_empty(), "{name}: {diags:?}");
    }
}
