//! Per-rule fixtures for the semantic dataflow tier (`--analyze`): every
//! flow rule has a known-bad artifact it fires on and a clean artifact it
//! stays silent on, so no rule can pass vacuously.

use lph_analysis::contract::ReductionArtifact;
use lph_analysis::dtm::DtmArtifact;
use lph_analysis::flow::machine::{
    check_certified_bounds, check_flow_halting, check_flow_reachability, check_step_certificate,
};
use lph_analysis::flow::reduction::{check_cluster_size, check_domain, check_output_size};
use lph_analysis::flow::sentence::{
    check_prefix_normal_form, check_radius_flow, check_semantic_level,
};
use lph_analysis::formula::SentenceArtifact;
use lph_analysis::{Diagnostic, Severity};
use lph_graphs::{generators, BitString, LabeledGraph, PolyBound};
use lph_logic::dsl::{and, app};
use lph_logic::examples;
use lph_logic::{FoVar, Formula, Matrix, Sentence, SoBlock, SoVar};
use lph_machine::{machines, DistributedTm, Move, Pat, Sym, TmBuilder, WriteOp};
use lph_reductions::{ClusterPatch, LocalReduction, LocalView, ReductionError, SizeBound};

fn codes(diags: &[Diagnostic]) -> Vec<&str> {
    diags.iter().map(|d| d.code.as_str()).collect()
}

fn assert_fires(diags: &[Diagnostic], code: &str) {
    assert!(codes(diags).contains(&code), "expected {code} in {diags:?}");
}

fn assert_silent(diags: &[Diagnostic], code: &str) {
    assert!(
        !codes(diags).contains(&code),
        "unexpected {code} in {diags:?}"
    );
}

/// A minimal well-behaved machine: step off the marker, then stop.
fn clean_machine() -> DistributedTm {
    let mut b = TmBuilder::new();
    let go = b.state("go");
    b.rule(
        b.start(),
        [Pat::Any; 3],
        go,
        [WriteOp::Keep; 3],
        [Move::S, Move::R, Move::S],
    );
    b.rule(
        go,
        [Pat::Any; 3],
        b.stop(),
        [WriteOp::Keep; 3],
        [Move::S; 3],
    );
    b.build()
}

/// A machine whose only cycle makes no progress (Keep + all-stay): no
/// consuming-tape certificate exists for it.
fn uncertifiable_machine() -> DistributedTm {
    let mut b = TmBuilder::new();
    let ping = b.state("ping");
    let pong = b.state("pong");
    b.rule(
        b.start(),
        [Pat::Any; 3],
        ping,
        [WriteOp::Keep; 3],
        [Move::S, Move::R, Move::S],
    );
    b.rule(ping, [Pat::Any; 3], pong, [WriteOp::Keep; 3], [Move::S; 3]);
    b.rule(pong, [Pat::Any; 3], ping, [WriteOp::Keep; 3], [Move::S; 3]);
    b.build()
}

// ---------------------------------------------------------------- DTM007

/// `ghost` is syntactically reachable (an entry of `blankland` leads to
/// it) but flow-unreachable: `blankland` is only ever entered with the
/// internal head inside the blank zone, where the `One`-scanning entry
/// into `ghost` can never fire.
#[test]
fn dtm007_fires_on_flow_unreachable_state() {
    let mut b = TmBuilder::new();
    let skip = b.state("skip");
    let blankland = b.state("blankland");
    let ghost = b.state("ghost");
    b.rule(
        b.start(),
        [Pat::Any; 3],
        skip,
        [WriteOp::Keep; 3],
        [Move::S, Move::R, Move::S],
    );
    b.rule(
        skip,
        [Pat::Any, Pat::Is(Sym::One), Pat::Any],
        skip,
        [WriteOp::Keep; 3],
        [Move::S, Move::R, Move::S],
    );
    b.rule(
        skip,
        [Pat::Any, Pat::Is(Sym::Blank), Pat::Any],
        blankland,
        [WriteOp::Keep; 3],
        [Move::S, Move::R, Move::S],
    );
    b.rule(
        blankland,
        [Pat::Any, Pat::Is(Sym::One), Pat::Any],
        ghost,
        [WriteOp::Keep; 3],
        [Move::S; 3],
    );
    b.rule(
        blankland,
        [Pat::Any, Pat::Is(Sym::Blank), Pat::Any],
        b.stop(),
        [WriteOp::Keep; 3],
        [Move::S; 3],
    );
    b.rule(
        ghost,
        [Pat::Any; 3],
        b.stop(),
        [WriteOp::Keep; 3],
        [Move::S; 3],
    );
    let a = DtmArtifact::new("ghosted", b.build(), true);
    let diags = check_flow_reachability(&a);
    assert_fires(&diags, "DTM007");
    assert_eq!(diags[0].severity, Severity::Warning);
    assert!(diags[0].message.contains("ghost"), "{diags:?}");
}

#[test]
fn dtm007_silent_on_corpus_machines() {
    for (name, tm) in [
        ("all_selected", machines::all_selected_decider()),
        ("coloring", machines::proper_coloring_verifier()),
        ("echo", machines::echo_machine()),
    ] {
        let a = DtmArtifact::new(name, tm, false);
        assert_silent(&check_flow_reachability(&a), "DTM007");
    }
}

// ---------------------------------------------------------------- DTM008

#[test]
fn dtm008_fires_when_no_abstract_path_halts() {
    let mut b = TmBuilder::new();
    let spin = b.state("spin");
    b.rule(
        b.start(),
        [Pat::Any; 3],
        spin,
        [WriteOp::Keep; 3],
        [Move::S, Move::R, Move::S],
    );
    b.rule(
        spin,
        [Pat::Any; 3],
        spin,
        [WriteOp::Keep; 3],
        [Move::S, Move::R, Move::S],
    );
    let single = DtmArtifact::new("never_stops", b.build(), true);
    let diags = check_flow_halting(&single);
    assert_fires(&diags, "DTM008");
    assert_eq!(diags[0].severity, Severity::Error);
    // Multi-round claim: still no q_stop/q_pause, still an error.
    let multi = DtmArtifact::new("never_ends", uncertifiable_machine(), false);
    assert_fires(&check_flow_halting(&multi), "DTM008");
}

#[test]
fn dtm008_silent_on_halting_machines() {
    let a = DtmArtifact::new("clean", clean_machine(), true);
    assert_silent(&check_flow_halting(&a), "DTM008");
    let echo = DtmArtifact::new("echo", machines::echo_machine(), false);
    assert_silent(&check_flow_halting(&echo), "DTM008");
}

// ---------------------------------------------------------------- DTM009

#[test]
fn dtm009_fires_when_claim_does_not_dominate_certificate() {
    let a = DtmArtifact::new("overclaimed", clean_machine(), true)
        .with_bounds(PolyBound::constant(0), PolyBound::constant(0));
    let diags = check_certified_bounds(&a);
    assert_fires(&diags, "DTM009");
    assert!(diags.iter().all(|d| d.severity == Severity::Proof));
}

#[test]
fn dtm009_fires_when_claim_has_no_certificate() {
    let a = DtmArtifact::new("unbacked", uncertifiable_machine(), false)
        .with_bounds(PolyBound::linear(10, 10), PolyBound::linear(10, 10));
    let diags = check_certified_bounds(&a);
    assert_fires(&diags, "DTM009");
    assert!(
        diags[0].message.contains("cannot be certified"),
        "{diags:?}"
    );
}

#[test]
fn dtm009_silent_on_dominating_claim() {
    let a = DtmArtifact::new("generous", clean_machine(), true).with_bounds(
        PolyBound::linear(1000, 1000),
        PolyBound::linear(10_000, 10_000),
    );
    assert_silent(&check_certified_bounds(&a), "DTM009");
}

// ---------------------------------------------------------------- DTM010

#[test]
fn dtm010_fires_when_no_certificate_derivable() {
    let a = DtmArtifact::new("loopy", uncertifiable_machine(), false);
    let diags = check_step_certificate(&a);
    assert_fires(&diags, "DTM010");
    assert_eq!(diags[0].severity, Severity::Warning);
    assert!(diags[0].message.contains("ping") || diags[0].message.contains("pong"));
}

#[test]
fn dtm010_silent_when_certificate_exists() {
    let a = DtmArtifact::new("clean", clean_machine(), true);
    assert_silent(&check_step_certificate(&a), "DTM010");
    let coloring = DtmArtifact::new("coloring", machines::proper_coloring_verifier(), false);
    assert_silent(&check_step_certificate(&coloring), "DTM010");
}

// ---------------------------------------------------------------- FRM006

#[test]
fn frm006_fires_on_level_inflated_by_dead_block() {
    let x = FoVar(0);
    let c = SoVar::set(0);
    // ∃C ∀°x ⊤ claims Σ1, but C never reaches the matrix: the sentence
    // provably defines a Σ0 property.
    let s = Sentence::new(
        vec![SoBlock::exists(vec![c])],
        Matrix::Lfo {
            x,
            body: Formula::True,
        },
    );
    let a = SentenceArtifact::new("dead_block", s, "Σ1");
    let diags = check_semantic_level(&a);
    assert_fires(&diags, "FRM006");
    assert_eq!(diags[0].severity, Severity::Proof);
}

#[test]
fn frm006_silent_on_corpus_sentences() {
    for (name, s, level) in [
        ("ham", examples::hamiltonian(), "Σ5"),
        ("nas", examples::not_all_selected(), "Σ3"),
        ("all_sel", examples::all_selected(), "Σ0 = Π0"),
    ] {
        let a = SentenceArtifact::new(name, s, level);
        assert_silent(&check_semantic_level(&a), "FRM006");
    }
}

// ---------------------------------------------------------------- FRM007

#[test]
fn frm007_fires_when_claimed_radius_below_flow_radius() {
    // three_colorable's matrix uses a variable at flow distance 2.
    let a = SentenceArtifact::new("shallow", examples::three_colorable(), "Σ1").with_radius(1);
    let diags = check_radius_flow(&a);
    assert_fires(&diags, "FRM007");
    assert_eq!(diags[0].severity, Severity::Proof);
}

#[test]
fn frm007_warns_when_claimed_radius_above_syntactic_radius() {
    let a = SentenceArtifact::new("bloated", examples::three_colorable(), "Σ1").with_radius(10);
    let diags = check_radius_flow(&a);
    assert_fires(&diags, "FRM007");
    assert_eq!(diags[0].severity, Severity::Warning);
}

#[test]
fn frm007_silent_on_pinched_claim_or_no_claim() {
    let claimed = SentenceArtifact::new("exact", examples::three_colorable(), "Σ1").with_radius(2);
    assert_silent(&check_radius_flow(&claimed), "FRM007");
    let unclaimed = SentenceArtifact::new("none", examples::three_colorable(), "Σ1");
    assert_silent(&check_radius_flow(&unclaimed), "FRM007");
}

// ---------------------------------------------------------------- FRM008

#[test]
fn frm008_fires_on_unmerged_adjacent_blocks() {
    let x = FoVar(0);
    let c0 = SoVar::set(0);
    let c1 = SoVar::set(1);
    // ∃C₀ ∃C₁ as two separate blocks: level-neutral but not normal form.
    let s = Sentence::new(
        vec![SoBlock::exists(vec![c0]), SoBlock::exists(vec![c1])],
        Matrix::Lfo {
            x,
            body: and(vec![app(c0, vec![x]), app(c1, vec![x])]),
        },
    );
    let a = SentenceArtifact::new("split_prefix", s, "Σ1");
    let diags = check_prefix_normal_form(&a);
    assert_fires(&diags, "FRM008");
    assert_eq!(diags[0].severity, Severity::Warning);
}

#[test]
fn frm008_silent_on_corpus_sentences() {
    for (name, s, level) in [
        ("ham", examples::hamiltonian(), "Σ5"),
        ("non3col", examples::non_three_colorable(), "Π4"),
    ] {
        let a = SentenceArtifact::new(name, s, level);
        assert_silent(&check_prefix_normal_form(&a), "FRM008");
    }
}

// ---------------------------------------------------------------- RED003

#[test]
fn red003_fires_on_probe_with_isolated_node() {
    let a = ReductionArtifact::new(
        Box::new(lph_reductions::eulerian::AllSelectedToEulerian),
        vec![LabeledGraph::single_node(BitString::from_bits01("1"))],
    );
    let diags = check_domain(&a);
    assert_fires(&diags, "RED003");
    assert_eq!(diags[0].severity, Severity::Error);
}

#[test]
fn red003_silent_on_domain_respecting_probes() {
    let a = ReductionArtifact::new(
        Box::new(lph_reductions::eulerian::AllSelectedToEulerian),
        vec![generators::labeled_cycle(&["1", "1", "0"])],
    );
    assert_silent(&check_domain(&a), "RED003");
}

// ------------------------------------------------------- RED004 / RED005

/// A deliberately super-polynomial gadget: `2^(d + 2)` chained nodes per
/// cluster, against declared *linear* bounds.
#[derive(Debug, Clone, Copy, Default)]
struct ExponentialGadget;

impl LocalReduction for ExponentialGadget {
    fn name(&self) -> &str {
        "exponential gadget (fixture)"
    }

    fn radius(&self) -> usize {
        1
    }

    fn cluster(&self, view: &LocalView) -> Result<ClusterPatch, ReductionError> {
        let k = 1usize << (view.degree() + 2);
        let blank = BitString::new();
        let mut patch = ClusterPatch::default();
        for i in 0..k {
            patch.node(format!("n{i}"), blank.clone());
        }
        for i in 1..k {
            patch.edge(format!("n{}", i - 1), format!("n{i}"));
        }
        for (_, nbr_id, _) in view.sorted_neighbors() {
            patch.outer_edge("n0", nbr_id.clone(), "n0");
        }
        Ok(patch)
    }

    fn size_bound(&self) -> Option<SizeBound> {
        Some(SizeBound {
            nodes: PolyBound::linear(1, 1),
            inner_edges: PolyBound::linear(1, 1),
            outer_edges: PolyBound::linear(0, 1),
        })
    }
}

/// A reduction that declares no size bound at all.
#[derive(Debug, Clone, Copy, Default)]
struct Undeclared;

impl LocalReduction for Undeclared {
    fn name(&self) -> &str {
        "undeclared size (fixture)"
    }

    fn radius(&self) -> usize {
        1
    }

    fn cluster(&self, view: &LocalView) -> Result<ClusterPatch, ReductionError> {
        let mut patch = ClusterPatch::default();
        patch.node("f", BitString::new());
        for (_, nbr_id, _) in view.sorted_neighbors() {
            patch.outer_edge("f", nbr_id.clone(), "f");
        }
        Ok(patch)
    }
}

#[test]
fn red004_fires_on_super_polynomial_cluster() {
    let a = ReductionArtifact::new(
        Box::new(ExponentialGadget),
        vec![generators::labeled_cycle(&["1", "1", "1"])],
    );
    let diags = check_cluster_size(&a);
    assert_fires(&diags, "RED004");
    assert_eq!(diags[0].severity, Severity::Proof);
}

#[test]
fn red004_silent_on_honest_declarations() {
    let a = ReductionArtifact::new(
        Box::new(lph_reductions::eulerian::AllSelectedToEulerian),
        vec![generators::labeled_cycle(&["1", "1", "0"])],
    );
    assert_silent(&check_cluster_size(&a), "RED004");
}

#[test]
fn red005_fires_on_super_polynomial_output() {
    let a = ReductionArtifact::new(
        Box::new(ExponentialGadget),
        vec![generators::labeled_cycle(&["1", "1", "1"])],
    );
    let diags = check_output_size(&a);
    assert_fires(&diags, "RED005");
    assert!(diags.iter().any(|d| d.severity == Severity::Proof));
}

#[test]
fn red005_notes_missing_size_bound() {
    let a = ReductionArtifact::new(
        Box::new(Undeclared),
        vec![generators::labeled_cycle(&["1"; 3])],
    );
    let diags = check_output_size(&a);
    assert_fires(&diags, "RED005");
    assert_eq!(diags[0].severity, Severity::Note);
}

#[test]
fn red005_silent_on_honest_declarations() {
    let a = ReductionArtifact::new(
        Box::new(lph_reductions::eulerian::AllSelectedToEulerian),
        vec![generators::labeled_cycle(&["1", "1", "0"])],
    );
    assert_silent(&check_output_size(&a), "RED005");
}
