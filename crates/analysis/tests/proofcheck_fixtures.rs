//! Firing and non-firing fixtures for the proof-carrying game-claim
//! rules `SAT001`–`SAT003`.
//!
//! The corpus claims themselves are pinned lint-clean by the tier-1 gate
//! `tests/lint_corpus.rs`; here each rule is driven to fire — with the
//! real CDCL backend where the shape allows it (wrong claims, exhausted
//! budgets) and with synthetic [`GameResult`]s for the shapes an honest
//! backend cannot produce (unchecked refutations).

use lph_analysis::proofcheck::{check_game_claims, evidence_diagnostics, GameClaim};
use lph_analysis::{ArbiterArtifact, Severity};
use lph_core::{arbiters, GameLimits, GameResult, RefutationEvidence};
use lph_graphs::generators;

fn artifact_with(claims: Vec<GameClaim>) -> ArbiterArtifact {
    ArbiterArtifact::new(arbiters::two_colorable_verifier(), "Σ1", 2).with_game_claims(claims)
}

#[test]
fn no_claims_no_diagnostics() {
    let diags = check_game_claims(&artifact_with(Vec::new()));
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn true_claims_on_both_polarities_are_clean() {
    let diags = check_game_claims(&artifact_with(vec![
        GameClaim::new("even cycle", generators::cycle(4), true),
        GameClaim::new("odd cycle", generators::cycle(5), false),
    ]));
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn sat001_fires_on_a_wrong_claim() {
    // Claiming the odd cycle 2-colorable contradicts the (checked)
    // refutation the backend produces.
    let diags = check_game_claims(&artifact_with(vec![GameClaim::new(
        "odd cycle claimed colorable",
        generators::cycle(5),
        true,
    )]));
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].code, "SAT001");
    assert_eq!(diags[0].severity, Severity::Proof);
    assert!(diags[0].message.contains("claimed Eve wins"));
}

#[test]
fn sat003_fires_when_the_budget_is_exhausted() {
    let limits = GameLimits {
        max_runs: 1,
        ..GameLimits::default()
    };
    let diags = check_game_claims(&artifact_with(vec![GameClaim::new(
        "odd cycle under a one-run budget",
        generators::cycle(5),
        false,
    )
    .with_limits(limits)]));
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].code, "SAT003");
    assert_eq!(diags[0].severity, Severity::Proof);
}

#[test]
fn sat001_fires_on_an_unchecked_refutation() {
    // An honest backend never returns this shape (Auto re-decides), but
    // the rule must catch it if one ever does.
    let result = GameResult {
        eve_wins: false,
        runs: 0,
        winning_first_move: None,
        refutation: Some(RefutationEvidence::Unchecked {
            cnf_mismatch: false,
            reason: "step 3 is not confirmed by reverse unit propagation".into(),
        }),
    };
    let diags = evidence_diagnostics("arbiter:test", "synthetic", false, &result);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].code, "SAT001");
    assert!(diags[0].message.contains("failed its RUP check"));
}

#[test]
fn sat002_fires_on_a_formula_mismatch() {
    let result = GameResult {
        eve_wins: false,
        runs: 0,
        winning_first_move: None,
        refutation: Some(RefutationEvidence::Unchecked {
            cnf_mismatch: true,
            reason: "step 0 names a variable the formula never allocated".into(),
        }),
    };
    let diags = evidence_diagnostics("arbiter:test", "synthetic", false, &result);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].code, "SAT002");
    assert_eq!(diags[0].severity, Severity::Proof);
}

#[test]
fn wrong_verdict_and_unchecked_evidence_both_surface() {
    let result = GameResult {
        eve_wins: true,
        runs: 0,
        winning_first_move: None,
        refutation: Some(RefutationEvidence::Unchecked {
            cnf_mismatch: false,
            reason: "the trace never derives the empty clause".into(),
        }),
    };
    let diags = evidence_diagnostics("arbiter:test", "synthetic", false, &result);
    let codes: Vec<&str> = diags.iter().map(|d| d.code.as_str()).collect();
    assert_eq!(codes, ["SAT001", "SAT001"], "{diags:?}");
}

#[test]
fn checked_refutations_are_clean_evidence() {
    let result = GameResult {
        eve_wins: false,
        runs: 0,
        winning_first_move: None,
        refutation: Some(RefutationEvidence::Checked {
            proof_steps: 12,
            rup_propagations: 340,
        }),
    };
    let diags = evidence_diagnostics("arbiter:test", "synthetic", false, &result);
    assert!(diags.is_empty(), "{diags:?}");
}
