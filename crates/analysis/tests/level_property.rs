//! Property-style check of the semantic level engine: the inferred
//! `Σℓ/Πℓ` placement of randomly assembled sentences (random quantifier
//! prefixes, including empty, split, and dead blocks, over a matrix
//! using a random subset of the bound variables) must agree with an
//! independent reference computation on the used-quantifier sequence.

use lph_analysis::flow::sentence::infer_level;
use lph_graphs::generators::XorShift;
use lph_logic::dsl::{and, app};
use lph_logic::{FoVar, Formula, Level, Matrix, Quantifier, Sentence, SoBlock, SoVar};

/// Reference semantics, computed a different way than the engine: keep
/// the quantifier of every block that binds at least one used variable,
/// then count maximal runs in that sequence.
fn reference_level(prefix: &[(Quantifier, Vec<SoVar>)], used: &[SoVar]) -> Level {
    let survivors: Vec<Quantifier> = prefix
        .iter()
        .filter(|(_, vars)| vars.iter().any(|v| used.contains(v)))
        .map(|&(q, _)| q)
        .collect();
    let mut runs = 0;
    let mut leading = None;
    let mut prev = None;
    for &q in &survivors {
        if prev != Some(q) {
            runs += 1;
            leading.get_or_insert(q);
            prev = Some(q);
        }
    }
    Level { ell: runs, leading }
}

#[test]
fn inferred_level_matches_reference_on_random_sentences() {
    let x = FoVar(0);
    let mut rng = XorShift::new(0x5eed_cafe_f00d_0001);
    for case in 0..500 {
        // Random prefix: up to 5 blocks, each with 0–3 variables.
        let block_count = rng.below(6);
        let mut prefix: Vec<(Quantifier, Vec<SoVar>)> = Vec::new();
        let mut pool: Vec<SoVar> = Vec::new();
        for b in 0..block_count {
            let q = if rng.bool() {
                Quantifier::Exists
            } else {
                Quantifier::Forall
            };
            let vars: Vec<SoVar> = (0..rng.below(4))
                .map(|i| SoVar::set((b * 4 + i) as u32))
                .collect();
            pool.extend(vars.iter().copied());
            prefix.push((q, vars));
        }
        // Random subset of bound variables actually reaches the matrix.
        let used: Vec<SoVar> = pool.iter().copied().filter(|_| rng.bool()).collect();
        let body = if used.is_empty() {
            Formula::True
        } else {
            and(used.iter().map(|&v| app(v, vec![x])).collect())
        };
        let sentence = Sentence::new(
            prefix
                .iter()
                .map(|(q, vars)| match q {
                    Quantifier::Exists => SoBlock::exists(vars.clone()),
                    Quantifier::Forall => SoBlock::forall(vars.clone()),
                })
                .collect(),
            Matrix::Lfo { x, body },
        );
        let inferred = infer_level(&sentence);
        let expected = reference_level(&prefix, &used);
        assert_eq!(
            (inferred.ell, inferred.leading),
            (expected.ell, expected.leading),
            "case {case}: prefix {prefix:?}, used {used:?}"
        );
    }
}

/// The engine agrees with the syntactic `Sentence::level` whenever every
/// bound variable is used (no dead binders to eliminate).
#[test]
fn inferred_level_matches_syntactic_level_without_dead_binders() {
    let x = FoVar(0);
    let mut rng = XorShift::new(0xd00d_2024_0806);
    for _ in 0..200 {
        let block_count = rng.below(5);
        let mut blocks = Vec::new();
        let mut atoms = Vec::new();
        for b in 0..block_count {
            let vars: Vec<SoVar> = (0..1 + rng.below(3))
                .map(|i| SoVar::set((b * 4 + i) as u32))
                .collect();
            atoms.extend(vars.iter().map(|&v| app(v, vec![x])));
            blocks.push(if rng.bool() {
                SoBlock::exists(vars)
            } else {
                SoBlock::forall(vars)
            });
        }
        let body = if atoms.is_empty() {
            Formula::True
        } else {
            and(atoms)
        };
        let s = Sentence::new(blocks, Matrix::Lfo { x, body });
        let inferred = infer_level(&s);
        let syntactic = s.level();
        assert_eq!(
            (inferred.ell, inferred.leading),
            (syntactic.ell, syntactic.leading)
        );
    }
}
